(* Drift campaign over the self-healing calibration data plane
   (DESIGN.md section 12): a multi-week simulated campaign on a
   drifting device, driven entirely through the service's wire ops.
   Each day compiles a fixed workload (availability must stay 1.0),
   then runs one calibration cycle — drift detection, Opt-3
   incremental re-characterization, canary gate, crash-consistent
   promotion — under injected calibration faults: drift spikes,
   truncated merges, canary flakes, and crashes on both sides of the
   ring-pointer commit (each crash simulates a restart + recovery
   from the calibration directory).

   Gates, aggregated into BENCH_drift.json:
     - availability 1.0: every compile request answers ok, every day;
     - zero epochs promoted without a real canary pass (flaked
       promotions must be revoked by the automatic rollback);
     - every rollback (automatic or operator-initiated) restores the
       prior epoch bit-identically — the reinstalled crosstalk
       serializes to the exact bytes it had when it last served;
     - no cache entry ever outlives its epoch (purge-on-promote);
     - a crash mid-promotion recovers onto exactly the old or exactly
       the new epoch, never a mix;
     - Opt-3 incremental cycles cost < 25% of the full
       re-characterization trial budget, with canary inflation inside
       the gate (periodic full cycles are the control);
     - the whole campaign report is bit-identical at every --jobs. *)

module Service = Core.Service
module Wire = Core.Wire
module Registry = Core.Registry
module Calibrator = Core.Calibrator
module Cache = Core.Cache
module Json = Core.Json
module Faults = Core.Service_faults

let dev_id = "example6q"
let nc = 6 (* compile requests per day *)

let build_circuit device i =
  let topo = Core.Device.topology device in
  let edges = Array.of_list (Core.Topology.edges topo) in
  let nq = Core.Device.nqubits device in
  let a, b = edges.(i mod Array.length edges) in
  let c = Core.Circuit.create nq in
  let c = Core.Circuit.add c Core.Gate.H [ a ] in
  let c = Core.Circuit.add c Core.Gate.Cnot [ a; b ] in
  let c =
    if i mod 2 = 0 then Core.Circuit.add c (Core.Gate.Rz (0.1 +. (0.07 *. float_of_int i))) [ b ]
    else c
  in
  Core.Circuit.measure_all c

let compile_request device ~day i =
  Wire.Compile
    {
      id = Printf.sprintf "d%d-c%d" day i;
      device = dev_id;
      circuit = build_circuit device i;
      params = Wire.default_params;
    }

(* ---- JSON plumbing ---- *)

let str k doc = Result.value ~default:"" (Json.find_str k doc)
let flt k doc = Result.value ~default:nan (Json.find_float k doc)
let booly k doc = match Json.member k doc with Some (Json.Bool b) -> b | _ -> false
let obj k doc = Json.member k doc

(* ---- campaign state ---- *)

type campaign = {
  mutable compiles : int;
  mutable compile_ok : int;
  mutable op_errors : int;  (* non-ok answers to calibration/status ops *)
  mutable promotions : int;
  mutable promotions_full : int;  (* from the periodic full control cycles *)
  mutable unverified : int;  (* promoted with real_pass = false: must stay 0 *)
  mutable rejections : int;
  mutable no_drift : int;
  mutable auto_rollbacks : int;
  mutable op_rollbacks : int;
  mutable op_rollback_empty : int;  (* drill hit an empty ring *)
  mutable crashes : int;
  mutable restarts : int;
  mutable crash_bad : int;  (* recovered epoch neither old nor new *)
  mutable rb_mismatch : int;  (* rollback not bit-identical *)
  mutable stale_cache : int;  (* cache entries keyed under a retired epoch *)
  mutable purged : int;
  mutable inc_fractions : float list;  (* flagged-only cycles, newest first *)
  mutable fallbacks : int;  (* forced cycles with nothing flagged *)
  mutable inc_inflations : float list;
  mutable full_inflations : float list;
  mutable timeline : Json.t list;  (* newest first *)
}

let fresh_campaign () =
  {
    compiles = 0;
    compile_ok = 0;
    op_errors = 0;
    promotions = 0;
    promotions_full = 0;
    unverified = 0;
    rejections = 0;
    no_drift = 0;
    auto_rollbacks = 0;
    op_rollbacks = 0;
    op_rollback_empty = 0;
    crashes = 0;
    restarts = 0;
    crash_bad = 0;
    rb_mismatch = 0;
    stale_cache = 0;
    purged = 0;
    inc_fractions = [];
    fallbacks = 0;
    inc_inflations = [];
    full_inflations = [];
    timeline = [];
  }

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let maxf = List.fold_left max 0.0

let clean_dir d =
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
  else Sys.mkdir d 0o755

(* ---- one seeded campaign at one jobs setting ---- *)

let run_campaign ~days ~seed ~jobs ~dir =
  let caldir = Filename.concat dir (Printf.sprintf "drift-cal-j%d" jobs) in
  clean_dir caldir;
  let device = Core.Presets.example_6q () in
  let xtalk0 = Core.Device.ground_truth device in
  let ccfg = { Calibrator.default_config with Calibrator.jobs; seed } in
  let scfg = { Service.default_config with Service.jobs } in
  let plan = Faults.create ~seed () in
  (* Deterministic crash drills on top of the seeded plan: one on each
     side of the ring-pointer commit (they only fire if that day's
     cycle reaches promotion, which is why those days are forced). *)
  let hook ~id ~day =
    let extra =
      if day = 9 then [ Calibrator.Crash_before_commit ]
      else if day = 15 then [ Calibrator.Crash_after_commit ]
      else []
    in
    extra @ Faults.calibration_faults plan ~id ~day
  in
  let st = fresh_campaign () in
  let registry = ref (Registry.create ()) in
  let calibrator = ref (Calibrator.create !registry) in
  let service = ref (Service.create !registry) in
  let boot () =
    registry := Registry.create ();
    ignore (Registry.add_static !registry ~id:dev_id ~device ~xtalk:xtalk0);
    calibrator := Calibrator.create ~config:ccfg ~dir:caldir !registry;
    Calibrator.set_fault !calibrator (Some hook);
    let recovered = Calibrator.recover !calibrator in
    service := Service.create ~config:scfg !registry;
    Service.set_calibrator !service (Some !calibrator);
    List.length recovered
  in
  ignore (boot ());
  let entry () = Option.get (Registry.find !registry dev_id) in
  let xtalk_bytes x = Json.to_string (Core.Store.crosstalk_to_json x) in
  (* digest -> exact serialized bytes the epoch had while serving *)
  let epoch_bytes = Hashtbl.create 16 in
  let note_epoch () =
    let e = entry () in
    Hashtbl.replace epoch_bytes e.Registry.epoch (xtalk_bytes e.Registry.xtalk)
  in
  note_epoch ();
  let check_restored ~epoch =
    let e = entry () in
    let ok =
      e.Registry.epoch = epoch
      &&
      match Hashtbl.find_opt epoch_bytes epoch with
      | Some bytes -> bytes = xtalk_bytes e.Registry.xtalk
      | None -> false
    in
    if not ok then st.rb_mismatch <- st.rb_mismatch + 1
  in
  let check_cache () =
    let live = (entry ()).Registry.epoch in
    List.iter
      (fun key ->
        match Cache.find (Service.cache !service) key with
        | Some e when e.Cache.epoch <> "" && e.Cache.epoch <> live ->
          st.stale_cache <- st.stale_cache + 1
        | _ -> ())
      (Cache.keys_newest_first (Service.cache !service))
  in
  let op req =
    let doc = Service.handle !service req in
    if str "status" doc <> "ok" then st.op_errors <- st.op_errors + 1;
    doc
  in
  for day = 1 to days do
    (* morning workload: availability must hold every day *)
    let reqs = List.init nc (fun i -> compile_request device ~day i) in
    List.iter
      (fun doc ->
        st.compiles <- st.compiles + 1;
        if str "status" doc = "ok" then st.compile_ok <- st.compile_ok + 1)
      (Service.handle_batch !service reqs);
    (* calibration cycle: every 7th day is a full control pass, every
       3rd (and the crash-drill days) a forced incremental one *)
    let full = day mod 7 = 0 in
    let force = full || day mod 3 = 0 || day = 9 || day = 15 in
    let poison = day = 5 in
    let pre_epoch = (entry ()).Registry.epoch in
    let doc =
      op
        (Wire.Calibrate
           { id = Printf.sprintf "cal%d" day; device = dev_id; day = Some day; force; full; poison })
    in
    st.purged <- st.purged + int_of_float (flt "purged" doc);
    let result = Option.value ~default:Json.Null (obj "result" doc) in
    let action = str "action" result in
    let record_cost () =
      match str "mode" result with
      | "flagged-only" when not full ->
        st.inc_fractions <- flt "cost_fraction" result :: st.inc_fractions
      | "full-fallback" -> st.fallbacks <- st.fallbacks + 1
      | _ -> ()
    in
    (match action with
    | "no-drift" -> st.no_drift <- st.no_drift + 1
    | "rejected" ->
      st.rejections <- st.rejections + 1;
      record_cost ();
      if (entry ()).Registry.epoch <> pre_epoch then st.rb_mismatch <- st.rb_mismatch + 1
    | "promoted" ->
      st.promotions <- st.promotions + 1;
      if full then st.promotions_full <- st.promotions_full + 1;
      record_cost ();
      (match obj "canary" result with
      | Some c ->
        if not (booly "real_pass" c) then st.unverified <- st.unverified + 1;
        if full then st.full_inflations <- flt "inflation" c :: st.full_inflations
        else st.inc_inflations <- flt "inflation" c :: st.inc_inflations
      | None -> st.unverified <- st.unverified + 1)
    | "rolled-back" ->
      st.auto_rollbacks <- st.auto_rollbacks + 1;
      record_cost ();
      check_restored ~epoch:(str "restored_epoch" result)
    | "crashed" ->
      st.crashes <- st.crashes + 1;
      let candidate = str "candidate_epoch" result in
      st.restarts <- st.restarts + 1;
      ignore (boot ());
      let post = (entry ()).Registry.epoch in
      if post <> pre_epoch && post <> candidate then st.crash_bad <- st.crash_bad + 1
    | _ -> st.op_errors <- st.op_errors + 1);
    note_epoch ();
    check_cache ();
    (* operator rollback drill twice in the campaign *)
    if day = (days / 2) + 1 || day = days - 1 then begin
      let doc = Service.handle !service (Wire.Rollback { id = Printf.sprintf "rb%d" day; device = dev_id }) in
      match str "status" doc with
      | "ok" ->
        st.op_rollbacks <- st.op_rollbacks + 1;
        st.purged <- st.purged + int_of_float (flt "purged" doc);
        check_restored ~epoch:(str "epoch" doc);
        check_cache ();
        note_epoch ()
      | "rollback_failed" -> st.op_rollback_empty <- st.op_rollback_empty + 1
      | _ -> st.op_errors <- st.op_errors + 1
    end;
    st.timeline <-
      Json.Object
        [
          ("day", Json.Number (float_of_int day));
          ("action", Json.String action);
          ("epoch", Json.String (entry ()).Registry.epoch);
        ]
      :: st.timeline
  done;
  (* the health op must surface staleness + warnings (DESIGN 12) *)
  let health = op (Wire.Health { id = "h-final" }) in
  let status = op (Wire.Epoch_status { id = "es-final"; device = Some dev_id }) in
  let availability = float_of_int st.compile_ok /. float_of_int (max 1 st.compiles) in
  Json.Object
    [
      ("days", Json.Number (float_of_int days));
      ("seed", Json.Number (float_of_int seed));
      ("compiles", Json.Number (float_of_int st.compiles));
      ("compile_ok", Json.Number (float_of_int st.compile_ok));
      ("availability", Json.Number availability);
      ("op_errors", Json.Number (float_of_int st.op_errors));
      ("promotions", Json.Number (float_of_int st.promotions));
      ("promotions_full", Json.Number (float_of_int st.promotions_full));
      ("promoted_without_canary", Json.Number (float_of_int st.unverified));
      ("rejections", Json.Number (float_of_int st.rejections));
      ("no_drift", Json.Number (float_of_int st.no_drift));
      ("auto_rollbacks", Json.Number (float_of_int st.auto_rollbacks));
      ("operator_rollbacks", Json.Number (float_of_int st.op_rollbacks));
      ("operator_rollback_empty", Json.Number (float_of_int st.op_rollback_empty));
      ("rollback_mismatches", Json.Number (float_of_int st.rb_mismatch));
      ("crashes", Json.Number (float_of_int st.crashes));
      ("restarts", Json.Number (float_of_int st.restarts));
      ("crash_inconsistencies", Json.Number (float_of_int st.crash_bad));
      ("stale_cache_entries", Json.Number (float_of_int st.stale_cache));
      ("cache_purged", Json.Number (float_of_int st.purged));
      ( "incremental",
        Json.Object
          [
            ("cycles", Json.Number (float_of_int (List.length st.inc_fractions)));
            ("mean_cost_fraction", Json.Number (mean st.inc_fractions));
            ("max_cost_fraction", Json.Number (maxf st.inc_fractions));
            ("full_fallbacks", Json.Number (float_of_int st.fallbacks));
            ("max_inflation", Json.Number (maxf st.inc_inflations));
          ] );
      ( "full_control",
        Json.Object
          [
            ("cycles", Json.Number (float_of_int (List.length st.full_inflations)));
            ("max_inflation", Json.Number (maxf st.full_inflations));
          ] );
      ("canary_gate", Json.Number ccfg.Calibrator.canary_inflation);
      ("health", health);
      ("epoch_status", status);
      ("timeline", Json.Array (List.rev st.timeline));
    ]

(* ---- the jobs-sweep bench entry point ---- *)

let run ~days ~seed ~dir ~out ~smoke =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let days = if smoke then min days 6 else days in
  let jobs_list = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  Printf.printf "drift bench: %d-day campaign on %s, seed %d, jobs sweep %s\n%!" days dev_id
    seed
    (String.concat "/" (List.map string_of_int jobs_list));
  let t0 = Sys.time () in
  let runs =
    List.map
      (fun jobs ->
        let report = run_campaign ~days ~seed ~jobs ~dir in
        let digest = Digest.to_hex (Digest.string (Json.to_string report)) in
        Printf.printf "  jobs %d: digest %s\n%!" jobs digest;
        (jobs, report, digest))
      jobs_list
  in
  Printf.printf "campaign sweep done in %.1f s (CPU)\n%!" (Sys.time () -. t0);
  let _, report, digest0 = List.hd runs in
  let identical = List.for_all (fun (_, _, d) -> d = digest0) runs in
  let g k = match Json.member k report with Some (Json.Number n) -> n | _ -> nan in
  let sub o k =
    match Json.member o report with
    | Some inner -> ( match Json.member k inner with Some (Json.Number n) -> n | _ -> nan)
    | None -> nan
  in
  let availability = g "availability" in
  let inc_cycles = sub "incremental" "cycles" in
  let inc_mean = sub "incremental" "mean_cost_fraction" in
  let inc_inflation = sub "incremental" "max_inflation" in
  let gate = g "canary_gate" in
  let failures =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        (availability >= 1.0, "compile availability < 1.0");
        (g "op_errors" = 0.0, "a calibration/status op answered non-ok");
        (g "promoted_without_canary" = 0.0, "an epoch was promoted without a real canary pass");
        (g "rollback_mismatches" = 0.0, "a rollback was not bit-identical");
        (g "crash_inconsistencies" = 0.0, "a crash recovered onto a mixed epoch");
        (g "stale_cache_entries" = 0.0, "a cache entry outlived its epoch");
        (g "promotions" >= 1.0, "no epoch was ever promoted");
        ( g "auto_rollbacks" +. g "operator_rollbacks" >= 1.0,
          "no rollback was ever exercised" );
        (inc_cycles >= 1.0, "no Opt-3 incremental cycle ran");
        ( inc_mean < 0.25,
          Printf.sprintf "incremental cost fraction %.3f >= 0.25" inc_mean );
        ( inc_inflation <= gate +. 1e-9,
          Printf.sprintf "incremental canary inflation %.3f beyond the %.2f gate" inc_inflation
            gate );
        (identical, "campaign reports differ across --jobs");
      ]
  in
  let doc =
    Json.Object
      [
        ("jobs_swept", Json.Array (List.map (fun (j, _, _) -> Json.Number (float_of_int j)) runs));
        ("digests", Json.Array (List.map (fun (_, _, d) -> Json.String d) runs));
        ("jobs_identical", Json.Bool identical);
        ("pass", Json.Bool (failures = []));
        ("failures", Json.Array (List.map (fun m -> Json.String m) failures));
        ("campaign", report);
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "availability %.4f, %d promotions (%d full control), %d rejections, %d+%d rollbacks, %d crashes\n"
    availability (int_of_float (g "promotions"))
    (int_of_float (g "promotions_full"))
    (int_of_float (g "rejections"))
    (int_of_float (g "auto_rollbacks"))
    (int_of_float (g "operator_rollbacks"))
    (int_of_float (g "crashes"));
  Printf.printf "incremental: %d cycles, mean cost %.3f of full, max canary inflation %.3f (gate %.2f)\n"
    (int_of_float inc_cycles) inc_mean inc_inflation gate;
  Printf.printf "wrote %s\n" out;
  if failures <> [] then begin
    List.iter (fun m -> Printf.eprintf "drift bench FAILED: %s\n" m) failures;
    exit 1
  end

(* ---- out-of-process poisoned-epoch drill (ci.sh) ----

   Against a live daemon: record the serving epoch, inject a poisoned
   calibration cycle (truncated merge) through the wire op, and assert
   the canary/merge gate rejected it — same epoch, compiles still ok,
   cache intact. *)

let encode req = Json.to_string ~indent:false (Wire.request_to_json req)

let connect ~socket ~retries =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Some fd
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if n <= 0 then None
      else begin
        Unix.sleepf 0.1;
        go (n - 1)
      end
  in
  go retries

let send_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go ofs =
    if ofs < len then
      match Unix.write fd b ofs (len - ofs) with
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
  in
  go 0

let roundtrip fd req =
  send_all fd (encode req ^ "\n");
  let buf = Bytes.create 65536 in
  let acc = Buffer.create 4096 in
  let rec read_line () =
    match String.index_opt (Buffer.contents acc) '\n' with
    | Some i -> String.sub (Buffer.contents acc) 0 i
    | None -> (
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 ->
        Printf.eprintf "drift drill: connection closed mid-response\n";
        exit 1
      | n ->
        Buffer.add_subbytes acc buf 0 n;
        read_line ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        Printf.eprintf "drift drill: timed out waiting for a response\n";
        exit 1)
  in
  match Json.of_string (read_line ()) with
  | Ok doc -> doc
  | Error e ->
    Printf.eprintf "drift drill: unparseable response: %s\n" e;
    exit 1

let fail fmt = Printf.ksprintf (fun m -> Printf.eprintf "drift drill: %s\n" m; exit 1) fmt

let drill ~socket ~device_name =
  let device =
    match String.lowercase_ascii device_name with
    | "example6q" | "example" -> Core.Presets.example_6q ()
    | name -> (
      match Core.Presets.by_name name with
      | Some d -> d
      | None -> fail "unknown device %s" name)
  in
  match connect ~socket ~retries:50 with
  | None -> fail "cannot connect to %s" socket
  | Some fd ->
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 120.0;
    let status_of doc = str "status" doc in
    (* 1. the serving epoch before the attack *)
    let es = roundtrip fd (Wire.Epoch_status { id = "es0"; device = Some device_name }) in
    if status_of es <> "ok" then fail "epoch_status answered %s" (status_of es);
    let epoch0 =
      match Json.find_list "devices" es with
      | Ok (d :: _) -> str "epoch" d
      | _ -> fail "epoch_status returned no devices"
    in
    (* 2. warm the cache under that epoch *)
    let compile i =
      roundtrip fd
        (Wire.Compile
           {
             id = Printf.sprintf "dc%d" i;
             device = device_name;
             circuit = build_circuit device i;
             params = Wire.default_params;
           })
    in
    for i = 0 to 2 do
      let doc = compile i in
      if status_of doc <> "ok" then fail "warmup compile %d answered %s" i (status_of doc)
    done;
    (* 3. poisoned calibration cycle: must be rejected *)
    let cal =
      roundtrip fd
        (Wire.Calibrate
           { id = "poison"; device = device_name; day = None; force = true; full = false; poison = true })
    in
    if status_of cal <> "ok" then fail "calibrate answered %s" (status_of cal);
    if booly "promoted" cal then fail "poisoned epoch was PROMOTED";
    let action =
      match obj "result" cal with Some r -> str "action" r | None -> ""
    in
    if action <> "rejected" then fail "poisoned cycle ended as %s, expected rejected" action;
    (* 4. epoch unchanged, compiles still served (cache intact) *)
    let es2 = roundtrip fd (Wire.Epoch_status { id = "es1"; device = Some device_name }) in
    let epoch1 =
      match Json.find_list "devices" es2 with
      | Ok (d :: _) -> str "epoch" d
      | _ -> fail "epoch_status (post) returned no devices"
    in
    if epoch1 <> epoch0 then fail "epoch changed across a rejected cycle";
    let post = compile 0 in
    if status_of post <> "ok" then fail "post-drill compile answered %s" (status_of post);
    if not (booly "cached" post) then fail "cache was lost across a rejected cycle";
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Printf.printf "drift drill: poisoned epoch rejected (%s), epoch %s intact, cache warm\n"
      action epoch0;
    exit 0
