(* Section 9.4 scalability study: XtalkSched compile time on
   quantum-supremacy-style random circuits, 6-18 qubits, 100-1000
   gates.  The paper reports < 2 minutes for 18 qubits / 500 gates and
   < 15 minutes for 1000 gates; with the cluster decomposition our
   solver should stay well inside both.

   [bench] is the standalone `--bench-scale` harness: it compiles a
   1000+-gate supremacy circuit on the generated 127-qubit heavy-hex
   device through the windowed rung, gates wall time, jobs-determinism
   and schedule validity, checks the windowed objective against the
   exact solver on <= 20-qubit control slices, and writes
   BENCH_scale.json (exit 1 on any failed gate). *)

let instances (ctx : Ctx.t) =
  match ctx.Ctx.quality with
  | Ctx.Quick -> [ (6, 100); (10, 250); (14, 500); (18, 500); (18, 1000) ]
  | Ctx.Full -> [ (6, 100); (8, 150); (10, 250); (12, 350); (14, 500); (16, 750); (18, 1000) ]

let compile_row table device xtalk rng (nqubits, target_gates) =
  let bench = Core.Supremacy.build device ~rng ~nqubits ~target_gates in
  (* Wall clock, not [Sys.time]: the pool-parallel rungs spread work
     over domains, so CPU seconds overstate the latency a user sees
     (and under a deadline it is wall time that matters).  Both are
     reported; the stats carry the CPU figure. *)
  let t0 = Unix.gettimeofday () in
  let _, stats =
    Core.Xtalk_sched.schedule ~omega:0.5 ~node_budget:200_000 ~device ~xtalk
      bench.Core.Supremacy.circuit
  in
  let wall = Unix.gettimeofday () -. t0 in
  Core.Tablefmt.add_row table
    [
      Core.Device.name device;
      string_of_int nqubits;
      string_of_int (Core.Circuit.length bench.Core.Supremacy.circuit);
      string_of_int stats.Core.Xtalk_sched.pairs;
      string_of_int stats.Core.Xtalk_sched.clusters;
      string_of_int stats.Core.Xtalk_sched.nodes;
      Core.Xtalk_sched.rung_name stats.Core.Xtalk_sched.rung;
      Printf.sprintf "%.2f" wall;
      Printf.sprintf "%.2f" stats.Core.Xtalk_sched.cpu_seconds;
    ]

let run (ctx : Ctx.t) =
  Core.Tablefmt.section "Section 9.4: scheduler scalability (supremacy circuits)";
  let device, xtalk = Ctx.poughkeepsie ctx in
  let rng = Ctx.rng_for "scale" in
  let table =
    Core.Tablefmt.create
      [
        "device"; "qubits"; "gates"; "interfering pairs"; "clusters"; "nodes"; "rung";
        "wall (s)"; "cpu (s)";
      ]
  in
  List.iter (compile_row table device xtalk rng) (instances ctx);
  (* Beyond the paper: a synthetic 36-qubit grid with random crosstalk
     (ground truth used directly; characterizing a 6x6 grid is the
     expensive part on real hardware, not the compile), and the
     127-qubit heavy-hex preset through the windowed rung. *)
  let big = Core.Presets.grid ~rows:6 ~cols:6 () in
  let big_xtalk = Core.Device.ground_truth big in
  List.iter (compile_row table big big_xtalk rng) [ (24, 600); (36, 1000) ];
  let hh = Core.Presets.heavy_hex_127 () in
  let hh_xtalk = Core.Device.ground_truth hh in
  List.iter (compile_row table hh hh_xtalk rng) [ (127, 1000) ];
  Core.Tablefmt.print table;
  Printf.printf "\npaper (with Z3): < 2 min at 18 qubits/500 gates, < 15 min at 1000 gates\n"

(* ---- the --bench-scale harness ---- *)

(* Documented quality gate: on control slices small enough for the
   exact solver, the windowed objective must stay within this factor
   of the exact objective (DESIGN.md section 11). *)
let quality_factor = 2.5

(* Full-run wall bound for the 127-qubit compile, per jobs setting.
   "Minutes, not hours": generous enough for CI machines, tight enough
   to catch a quadratic regression. *)
let wall_bound = 240.0

let fingerprint sched =
  List.map
    (fun g ->
      ( g.Core.Gate.id,
        Core.Schedule.start sched g.Core.Gate.id,
        Core.Schedule.duration sched g.Core.Gate.id ))
    (Core.Circuit.gates (Core.Schedule.circuit sched))

let bench ~smoke ~jobs ~out =
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let device = Core.Presets.heavy_hex_127 () in
  let xtalk = Core.Device.ground_truth device in
  let target_gates = if smoke then 500 else 1100 in
  let bench_circ =
    Core.Supremacy.build device ~rng:(Core.Rng.create 0x5CA1E) ~nqubits:127 ~target_gates
  in
  let circuit = bench_circ.Core.Supremacy.circuit in
  let jobs_list = List.sort_uniq compare (if smoke then [ 1; jobs ] else [ 1; 2; jobs ]) in
  Printf.printf "scale benchmark (%s): %s, %d gates, jobs %s\n%!"
    (if smoke then "smoke" else "full")
    (Core.Device.name device) (Core.Circuit.length circuit)
    (String.concat "/" (List.map string_of_int jobs_list));
  let baseline = ref None in
  let rows =
    List.map
      (fun j ->
        let t0 = Unix.gettimeofday () in
        let sched, stats = Core.Xtalk_sched.schedule ~omega:0.5 ~jobs:j ~device ~xtalk circuit in
        let wall = Unix.gettimeofday () -. t0 in
        let rung = Core.Xtalk_sched.rung_name stats.Core.Xtalk_sched.rung in
        Printf.printf
          "  jobs %d: rung %s, %d windows, %d clusters, %d nodes, %.1f s wall (%.1f s cpu)\n%!"
          j rung stats.Core.Xtalk_sched.windows stats.Core.Xtalk_sched.clusters
          stats.Core.Xtalk_sched.nodes wall stats.Core.Xtalk_sched.cpu_seconds;
        if rung <> "windowed" then
          fail "jobs %d: expected the windowed rung, got %s" j rung;
        if stats.Core.Xtalk_sched.windows < 2 then
          fail "jobs %d: expected >= 2 windows, got %d" j stats.Core.Xtalk_sched.windows;
        (match Core.Schedule.validate sched with
        | Ok () -> ()
        | Error e -> fail "jobs %d: invalid schedule: %s" j e);
        if (not smoke) && wall > wall_bound then
          fail "jobs %d: wall %.1f s over the %.0f s bound" j wall wall_bound;
        let fp = fingerprint sched in
        (match !baseline with
        | None -> baseline := Some fp
        | Some fp0 ->
          if fp <> fp0 then fail "schedule differs between --jobs 1 and --jobs %d" j);
        Core.Json.Object
          [
            ("jobs", Core.Json.Number (float_of_int j));
            ("rung", Core.Json.String rung);
            ("windows", Core.Json.Number (float_of_int stats.Core.Xtalk_sched.windows));
            ("clusters", Core.Json.Number (float_of_int stats.Core.Xtalk_sched.clusters));
            ("nodes", Core.Json.Number (float_of_int stats.Core.Xtalk_sched.nodes));
            ("wall_seconds", Core.Json.Number wall);
            ("cpu_seconds", Core.Json.Number stats.Core.Xtalk_sched.cpu_seconds);
            ("objective", Core.Json.Number stats.Core.Xtalk_sched.objective);
          ])
      jobs_list
  in
  (* Quality gate: on <= 20-qubit control slices the exact solver is
     tractable; forcing the windowed rung with a small window on the
     same workloads bounds the cost of window stitching. *)
  let control_device = Core.Presets.poughkeepsie () in
  let control_xtalk = Core.Device.ground_truth control_device in
  let controls =
    let regions = Core.Presets.qaoa_regions control_device in
    List.map
      (fun region ->
        let qaoa =
          Core.Qaoa.build control_device
            ~rng:(Core.Rng.create (Hashtbl.hash ("scale-controls", region)))
            ~region
        in
        ( Printf.sprintf "qaoa[%s]" (String.concat ";" (List.map string_of_int region)),
          qaoa.Core.Qaoa.circuit ))
      regions
    @ [
        (let s =
           Core.Supremacy.build control_device
             ~rng:(Core.Rng.create 0x5CA1E) ~nqubits:14 ~target_gates:120
         in
         ("supremacy14", s.Core.Supremacy.circuit));
      ]
  in
  let control_rows =
    List.map
      (fun (name, c) ->
        let objective_of sched =
          Core.Evaluate.objective ~threshold:3.0 ~omega:0.5 control_device
            ~xtalk:control_xtalk sched
        in
        let exact_sched, exact_stats =
          Core.Xtalk_sched.schedule ~omega:0.5 ~max_exact_pairs:1000 ~device:control_device
            ~xtalk:control_xtalk c
        in
        let win_sched, win_stats =
          Core.Xtalk_sched.schedule ~omega:0.5 ~ladder_start:Core.Xtalk_sched.Windowed
            ~window_gates:24 ~device:control_device ~xtalk:control_xtalk c
        in
        let oe = objective_of exact_sched and ow = objective_of win_sched in
        let exact_rung = Core.Xtalk_sched.rung_name exact_stats.Core.Xtalk_sched.rung in
        let win_rung = Core.Xtalk_sched.rung_name win_stats.Core.Xtalk_sched.rung in
        Printf.printf "  control %-16s exact %.6f (%s) | windowed %.6f (%s) | ratio %.2f\n%!"
          name oe exact_rung ow win_rung
          (ow /. Float.max 1e-12 oe);
        if exact_rung <> "exact" then
          fail "control %s: exact compile served from rung %s" name exact_rung;
        if win_rung <> "windowed" then
          fail "control %s: windowed compile served from rung %s" name win_rung;
        if ow > (oe *. quality_factor) +. 1e-6 then
          fail "control %s: windowed objective %.6f exceeds %.1fx exact %.6f" name ow
            quality_factor oe;
        Core.Json.Object
          [
            ("workload", Core.Json.String name);
            ("exact_objective", Core.Json.Number oe);
            ("windowed_objective", Core.Json.Number ow);
            ("ratio", Core.Json.Number (ow /. Float.max 1e-12 oe));
          ])
      controls
  in
  let doc =
    Core.Json.Object
      [
        ("bench", Core.Json.String "scale: windowed scheduler on generated large devices");
        ("device", Core.Json.String (Core.Device.name device));
        ("smoke", Core.Json.Bool smoke);
        ("gates", Core.Json.Number (float_of_int (Core.Circuit.length circuit)));
        ( "jobs_checked",
          Core.Json.Array (List.map (fun j -> Core.Json.Number (float_of_int j)) jobs_list) );
        ("wall_bound_seconds", Core.Json.Number wall_bound);
        ("quality_factor", Core.Json.Number quality_factor);
        ("compiles", Core.Json.Array rows);
        ("controls", Core.Json.Array control_rows);
        ("failures", Core.Json.Array (List.rev_map (fun m -> Core.Json.String m) !failures));
      ]
  in
  let oc = open_out out in
  output_string oc (Core.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if !failures <> [] then begin
    List.iter (fun m -> Printf.eprintf "FAIL: %s\n" m) (List.rev !failures);
    exit 1
  end
