(* Load-generator bench for the compilation service (DESIGN.md
   section 8): replays a seeded, popularity-skewed workload of SWAP /
   QAOA / Hidden-Shift compile requests across several devices against
   an in-process Service, and reports throughput, latency percentiles,
   cache hit rate, and the degradation-rung histogram to
   BENCH_serve.json.

   Every cache hit is verified against a cold compile of the same
   canonical request (same key => bit-identical schedule); a mismatch
   fails the bench. *)

module Service = Core.Service
module Wire = Core.Wire
module Registry = Core.Registry
module Cache = Core.Cache
module Json = Core.Json

type template = { label : string; device : string; circuit : Core.Circuit.t }

let swap_templates device ~per_device =
  let name = Core.Device.name device in
  Core.Presets.swap_endpoints device
  |> List.filteri (fun i _ -> i < per_device)
  |> List.map (fun (src, dst) ->
         let bench = Core.Swap_circuits.build device ~src ~dst in
         {
           label = Printf.sprintf "%s/swap-%d-%d" name src dst;
           device = name;
           circuit = Core.Circuit.measure_all bench.Core.Swap_circuits.circuit;
         })

let qaoa_templates device ~rng ~per_device =
  let name = Core.Device.name device in
  Core.Presets.qaoa_regions device
  |> List.filteri (fun i _ -> i < per_device)
  |> List.map (fun region ->
         let inst = Core.Qaoa.build device ~rng:(Core.Rng.split rng) ~region in
         {
           label = Printf.sprintf "%s/qaoa-%s" name (String.concat "." (List.map string_of_int region));
           device = name;
           circuit = inst.Core.Qaoa.circuit;
         })

let hs_templates device ~per_device =
  let name = Core.Device.name device in
  let shifts = [ [ true; false; true; false ]; [ false; true; true; true ] ] in
  match Core.Presets.qaoa_regions device with
  | [] -> []
  | region :: _ ->
    shifts
    |> List.filteri (fun i _ -> i < per_device)
    |> List.map (fun shift ->
           let inst = Core.Hidden_shift.build device ~region ~shift ~redundancy:0 in
           {
             label =
               Printf.sprintf "%s/hs-%s" name
                 (String.concat "" (List.map (fun b -> if b then "1" else "0") shift));
             device = name;
             circuit = inst.Core.Hidden_shift.circuit;
           })

let percentile_ms p xs = 1000.0 *. Core.Stats.percentile p xs

let summary_json xs =
  Json.Object
    [
      ("count", Json.Number (float_of_int (List.length xs)));
      ("p50_ms", Json.Number (percentile_ms 50.0 xs));
      ("p99_ms", Json.Number (percentile_ms 99.0 xs));
      ("mean_ms", Json.Number (1000.0 *. Core.Stats.mean xs));
    ]

let run ~seed ~requests ~jobs ~smoke ~out =
  let rng = Core.Rng.create seed in
  let devices = [ Core.Presets.example_6q (); Core.Presets.poughkeepsie (); Core.Presets.johannesburg () ] in
  let registry = Registry.create () in
  List.iter
    (fun d ->
      ignore
        (Registry.add_static registry ~id:(Core.Device.name d) ~device:d
           ~xtalk:(Core.Device.ground_truth d)))
    devices;
  let templates =
    List.concat_map
      (fun d ->
        swap_templates d ~per_device:4
        @ qaoa_templates d ~rng ~per_device:2
        @ hs_templates d ~per_device:2)
      devices
  in
  let templates = Array.of_list (Core.Rng.shuffle_list rng templates) in
  let ntempl = Array.length templates in
  (* Zipf-skewed popularity: rank r drawn with weight 1/(r+1). *)
  let weighted =
    List.init ntempl (fun r -> (1.0 /. float_of_int (r + 1), templates.(r)))
  in
  let workload = List.init requests (fun _ -> Core.Rng.weighted_choice rng weighted) in
  Printf.printf "serve bench: %d requests over %d templates on %d devices (seed %d, jobs %d)\n%!"
    requests ntempl (List.length devices) seed jobs;

  (* Phase 1: sequential replay, per-request wall-clock latency. *)
  let config = { Service.default_config with Service.jobs = 1 } in
  let service = Service.create ~config registry in
  let served = Hashtbl.create 64 in  (* key -> (template, served schedule json) *)
  let cold = ref [] and cached = ref [] in
  let hit_keys = Hashtbl.create 64 in
  let rung_tally = Hashtbl.create 8 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun tpl ->
      let t1 = Unix.gettimeofday () in
      match Service.compile service ~device:tpl.device tpl.circuit with
      | Error e ->
        Printf.eprintf "compile of %s failed: %s\n" tpl.label e;
        exit 1
      | Ok o ->
        let dt = Unix.gettimeofday () -. t1 in
        let rung = Core.Xtalk_sched.rung_name o.Service.stats.Core.Xtalk_sched.rung in
        Hashtbl.replace rung_tally rung (1 + Option.value ~default:0 (Hashtbl.find_opt rung_tally rung));
        let sched_json = Json.to_string (Wire.schedule_to_json o.Service.schedule) in
        if o.Service.cached then begin
          cached := dt :: !cached;
          Hashtbl.replace hit_keys o.Service.key sched_json
        end
        else begin
          cold := dt :: !cold;
          if not (Hashtbl.mem served o.Service.key) then
            Hashtbl.add served o.Service.key (tpl, sched_json)
        end)
    workload;
  let sequential_seconds = Unix.gettimeofday () -. t0 in
  let hits = List.length !cached and misses = List.length !cold in
  let hit_rate = float_of_int hits /. float_of_int requests in

  (* Phase 2: verify every hit against a cold compile.  All hits of a
     key serve the same immutable cache entry, so one cold compile per
     hit key covers them all. *)
  let mismatches = ref 0 and verified_keys = ref 0 in
  Hashtbl.iter
    (fun key hit_json ->
      incr verified_keys;
      let tpl, _ =
        match Hashtbl.find_opt served key with
        | Some v -> v
        | None ->
          Printf.eprintf "internal: hit key %s never compiled cold\n" key;
          exit 1
      in
      let fresh = Service.create ~config registry in
      match Service.compile fresh ~device:tpl.device tpl.circuit with
      | Error e ->
        Printf.eprintf "verification compile of %s failed: %s\n" tpl.label e;
        exit 1
      | Ok o ->
        let cold_json = Json.to_string (Wire.schedule_to_json o.Service.schedule) in
        if cold_json <> hit_json then begin
          incr mismatches;
          Printf.eprintf "MISMATCH: cached %s differs from cold compile\n" tpl.label
        end)
    hit_keys;

  (* Phase 3: batched replay through handle_batch on a cold cache —
     the Pool-parallel path. *)
  let bconfig = { Service.default_config with Service.jobs } in
  let bservice = Service.create ~config:bconfig registry in
  let reqs =
    List.mapi
      (fun i tpl ->
        Wire.Compile
          {
            id = Printf.sprintf "b%d" i;
            device = tpl.device;
            circuit = tpl.circuit;
            params = Wire.default_params;
          })
      workload
  in
  let rec chunks acc = function
    | [] -> List.rev acc
    | rest ->
      let n = min bconfig.Service.queue_bound (List.length rest) in
      let batch = List.filteri (fun i _ -> i < n) rest in
      let tail = List.filteri (fun i _ -> i >= n) rest in
      chunks (batch :: acc) tail
  in
  let t2 = Unix.gettimeofday () in
  let responses = List.concat_map (fun batch -> Service.handle_batch bservice batch) (chunks [] reqs) in
  let batched_seconds = Unix.gettimeofday () -. t2 in
  let overloaded =
    List.length
      (List.filter
         (fun r -> match Json.find_str "status" r with Ok "overloaded" -> true | _ -> false)
         responses)
  in

  (* Phase 4: cached-path throughput through the rendered batch path —
     what the socket reactor serves (DESIGN.md §15).  The phase-1
     cache is warm; replay the popular templates in admission-sized
     batches of Wire requests and count rendered responses/second. *)
  let hot = Hashtbl.fold (fun _ (tpl, _) acc -> tpl :: acc) served [] in
  let hot = Array.of_list hot in
  let batch_size = config.Service.queue_bound in
  let hot_batch =
    List.init batch_size (fun i ->
        let tpl = hot.(i mod Array.length hot) in
        Wire.Compile
          {
            id = Printf.sprintf "h%d" i;
            device = tpl.device;
            circuit = tpl.circuit;
            params = Wire.default_params;
          })
  in
  let cached_total = if smoke then 20_000 else 200_000 in
  let iters = max 1 (cached_total / batch_size) in
  let t3 = Unix.gettimeofday () in
  for _ = 1 to iters do
    ignore (Service.handle_batch_rendered service hot_batch)
  done;
  let cached_rps = float_of_int (iters * batch_size) /. (Unix.gettimeofday () -. t3) in
  Printf.printf "cached-path (rendered): %.0f req/s over %d requests\n%!" cached_rps
    (iters * batch_size);

  (* Phase 5: the reactor over a live socket — 4 pipelined client
     connections replaying cached requests concurrently, so frames
     coalesce across connections into shared batches. *)
  let sock_path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qcx_serve_bench_%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists sock_path then Sys.remove sock_path;
  let metrics = Core.Server.create_metrics () in
  let server =
    Domain.spawn (fun () ->
        try Core.Server.serve_socket service ~path:sock_path ~batch_window:0.0005 ~metrics
        with _ -> ())
  in
  let nclients = 4 in
  let per_client = if smoke then 1_000 else 10_000 in
  let connect () =
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let rec go tries =
      match Unix.connect sock (Unix.ADDR_UNIX sock_path) with
      | () -> ()
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _) when tries > 0 ->
        Unix.sleepf 0.05;
        go (tries - 1)
    in
    go 100;
    sock
  in
  let hot_lines =
    Array.init 100 (fun i ->
        let tpl = hot.(i mod Array.length hot) in
        Json.to_string ~indent:false
          (Wire.request_to_json
             (Wire.Compile
                {
                  id = Printf.sprintf "s%d" i;
                  device = tpl.device;
                  circuit = tpl.circuit;
                  params = Wire.default_params;
                }))
        ^ "\n")
  in
  let clients = Array.init nclients (fun _ -> connect ()) in
  let t4 = Unix.gettimeofday () in
  let window = 100 in
  let rounds = per_client / window in
  let buf = Bytes.create 262144 in
  for _ = 1 to rounds do
    (* one pipelined window per client, then drain all responses *)
    Array.iter
      (fun sock ->
        Array.iter (fun l -> ignore (Unix.write_substring sock l 0 (String.length l))) hot_lines)
      clients;
    Array.iter
      (fun sock ->
        let got = ref 0 in
        while !got < window do
          match Unix.read sock buf 0 (Bytes.length buf) with
          | 0 -> got := window
          | k ->
            for j = 0 to k - 1 do
              if Bytes.get buf j = '\n' then incr got
            done
        done)
      clients
  done;
  let socket_rps =
    float_of_int (nclients * rounds * window) /. (Unix.gettimeofday () -. t4)
  in
  let stopper = connect () in
  let stop_line = {|{"op":"shutdown","id":"bye"}|} ^ "\n" in
  ignore (Unix.write_substring stopper stop_line 0 (String.length stop_line));
  Domain.join server;
  (try Unix.close stopper with Unix.Unix_error _ -> ());
  Array.iter (fun s -> try Unix.close s with Unix.Unix_error _ -> ()) clients;
  if Sys.file_exists sock_path then Sys.remove sock_path;
  Printf.printf "reactor socket: %.0f req/s over %d connections\n%!" socket_rps nclients;

  (* Phase 6: seeded chaos campaign — stalled cold compiles must not
     move the cached-path tail.  Per seed: fresh service, every 5th
     cold compile stalls, skewed replay; p99 per op class across all
     seeds must stay bounded. *)
  let nseeds = if smoke then 5 else 20 in
  let chaos_requests = if smoke then 60 else 200 in
  let chaos_cached = ref [] and chaos_cold = ref [] in
  for cseed = 0 to nseeds - 1 do
    let crng = Core.Rng.create (seed + (1000 * cseed)) in
    let cservice = Service.create ~config:{ config with Service.jobs } registry in
    Service.set_compile_fault cservice
      (Some (fun ~nth -> if nth mod 5 = 4 then Some (Service.Stall_compile 0.02) else None));
    for i = 0 to chaos_requests - 1 do
      let tpl = Core.Rng.weighted_choice crng weighted in
      let t = Unix.gettimeofday () in
      let doc =
        Service.handle cservice
          (Wire.Compile
             {
               id = Printf.sprintf "z%d" i;
               device = tpl.device;
               circuit = tpl.circuit;
               params = Wire.default_params;
             })
      in
      let dt = Unix.gettimeofday () -. t in
      match Json.member "cached" doc with
      | Some (Json.Bool true) -> chaos_cached := dt :: !chaos_cached
      | _ -> chaos_cold := dt :: !chaos_cold
    done
  done;
  let chaos_cached_p99 = percentile_ms 99.0 !chaos_cached in
  let chaos_cold_p99 = percentile_ms 99.0 !chaos_cold in
  Printf.printf
    "chaos campaign (%d seeds, stalls injected): cached p99 %.3f ms, cold p99 %.1f ms\n%!"
    nseeds chaos_cached_p99 chaos_cold_p99;

  let c = Cache.counters (Service.cache service) in
  let cold_p50 = percentile_ms 50.0 !cold and cached_p50 = percentile_ms 50.0 !cached in
  let speedup = cold_p50 /. Float.max 1e-9 cached_p50 in
  let doc =
    Json.Object
      [
        ("requests", Json.Number (float_of_int requests));
        ("templates", Json.Number (float_of_int ntempl));
        ("seed", Json.Number (float_of_int seed));
        ("jobs", Json.Number (float_of_int jobs));
        ("hits", Json.Number (float_of_int hits));
        ("misses", Json.Number (float_of_int misses));
        ("hit_rate", Json.Number hit_rate);
        ("cold", summary_json !cold);
        ("cached", summary_json !cached);
        ("speedup_p50", Json.Number speedup);
        ( "throughput_rps",
          Json.Object
            [
              ("sequential", Json.Number (float_of_int requests /. sequential_seconds));
              ("batched", Json.Number (float_of_int requests /. batched_seconds));
              ("cached_rendered", Json.Number cached_rps);
              ("reactor_socket", Json.Number socket_rps);
            ] );
        ("serving", Core.Server.metrics_json metrics);
        ( "chaos",
          Json.Object
            [
              ("seeds", Json.Number (float_of_int nseeds));
              ("requests_per_seed", Json.Number (float_of_int chaos_requests));
              ("cached_p99_ms", Json.Number chaos_cached_p99);
              ("cold_p99_ms", Json.Number chaos_cold_p99);
            ] );
        ( "rungs",
          Json.Object
            (List.filter_map
               (fun r ->
                 let name = Core.Xtalk_sched.rung_name r in
                 Option.map (fun n -> (name, Json.Number (float_of_int n)))
                   (Hashtbl.find_opt rung_tally name))
               Core.Xtalk_sched.all_rungs) );
        ( "verify",
          Json.Object
            [
              ("verified_keys", Json.Number (float_of_int !verified_keys));
              ("verified_hits", Json.Number (float_of_int hits));
              ("mismatches", Json.Number (float_of_int !mismatches));
            ] );
        ("overloaded", Json.Number (float_of_int overloaded));
        ( "cache",
          Json.Object
            [
              ("hits", Json.Number (float_of_int c.Cache.hits));
              ("misses", Json.Number (float_of_int c.Cache.misses));
              ("evictions", Json.Number (float_of_int c.Cache.evictions));
              ("insertions", Json.Number (float_of_int c.Cache.insertions));
              ("size", Json.Number (float_of_int c.Cache.size));
            ] );
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "hit rate %.1f%% (%d/%d), cold p50 %.2f ms, cached p50 %.4f ms (%.0fx), seq %.1f req/s, batched %.1f req/s\n"
    (100.0 *. hit_rate) hits requests cold_p50 cached_p50 speedup
    (float_of_int requests /. sequential_seconds)
    (float_of_int requests /. batched_seconds);
  Printf.printf "verified %d hit keys against cold compiles: %d mismatches\n" !verified_keys
    !mismatches;
  Printf.printf "wrote %s\n" out;
  if hit_rate <= 0.5 || speedup < 10.0 || !mismatches > 0 then begin
    Printf.eprintf "serve bench FAILED: hit rate, speedup, or hit fidelity below target\n";
    exit 1
  end;
  (* Cached-path floor (full runs only — smoke batches are too small
     to amortize warmup): the rendered batch path must clear 1e5 req/s,
     and the reactor socket must not collapse below the sequential
     replay rate.  The chaos tail gate holds in both modes: injected
     20 ms cold stalls must leave the cached p99 in microsecond
     territory (hits never wait on the compile pool) and the cold p99
     bounded by stall + compile time. *)
  let rps_floor = if smoke then 0.0 else 1.0e5 in
  if cached_rps < rps_floor then begin
    Printf.eprintf "serve bench FAILED: cached-path %.0f req/s below %.0f floor\n" cached_rps
      rps_floor;
    exit 1
  end;
  if socket_rps < 1000.0 then begin
    Printf.eprintf "serve bench FAILED: reactor socket path %.0f req/s below 1000 floor\n"
      socket_rps;
    exit 1
  end;
  if chaos_cached_p99 > 10.0 || chaos_cold_p99 > 2000.0 then begin
    Printf.eprintf
      "serve bench FAILED: chaos tail unbounded (cached p99 %.3f ms, cold p99 %.1f ms)\n"
      chaos_cached_p99 chaos_cold_p99;
    exit 1
  end
