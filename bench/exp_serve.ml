(* Load-generator bench for the compilation service (DESIGN.md
   section 8): replays a seeded, popularity-skewed workload of SWAP /
   QAOA / Hidden-Shift compile requests across several devices against
   an in-process Service, and reports throughput, latency percentiles,
   cache hit rate, and the degradation-rung histogram to
   BENCH_serve.json.

   Every cache hit is verified against a cold compile of the same
   canonical request (same key => bit-identical schedule); a mismatch
   fails the bench. *)

module Service = Core.Service
module Wire = Core.Wire
module Registry = Core.Registry
module Cache = Core.Cache
module Json = Core.Json

type template = { label : string; device : string; circuit : Core.Circuit.t }

let swap_templates device ~per_device =
  let name = Core.Device.name device in
  Core.Presets.swap_endpoints device
  |> List.filteri (fun i _ -> i < per_device)
  |> List.map (fun (src, dst) ->
         let bench = Core.Swap_circuits.build device ~src ~dst in
         {
           label = Printf.sprintf "%s/swap-%d-%d" name src dst;
           device = name;
           circuit = Core.Circuit.measure_all bench.Core.Swap_circuits.circuit;
         })

let qaoa_templates device ~rng ~per_device =
  let name = Core.Device.name device in
  Core.Presets.qaoa_regions device
  |> List.filteri (fun i _ -> i < per_device)
  |> List.map (fun region ->
         let inst = Core.Qaoa.build device ~rng:(Core.Rng.split rng) ~region in
         {
           label = Printf.sprintf "%s/qaoa-%s" name (String.concat "." (List.map string_of_int region));
           device = name;
           circuit = inst.Core.Qaoa.circuit;
         })

let hs_templates device ~per_device =
  let name = Core.Device.name device in
  let shifts = [ [ true; false; true; false ]; [ false; true; true; true ] ] in
  match Core.Presets.qaoa_regions device with
  | [] -> []
  | region :: _ ->
    shifts
    |> List.filteri (fun i _ -> i < per_device)
    |> List.map (fun shift ->
           let inst = Core.Hidden_shift.build device ~region ~shift ~redundancy:0 in
           {
             label =
               Printf.sprintf "%s/hs-%s" name
                 (String.concat "" (List.map (fun b -> if b then "1" else "0") shift));
             device = name;
             circuit = inst.Core.Hidden_shift.circuit;
           })

let percentile_ms p xs = 1000.0 *. Core.Stats.percentile p xs

let summary_json xs =
  Json.Object
    [
      ("count", Json.Number (float_of_int (List.length xs)));
      ("p50_ms", Json.Number (percentile_ms 50.0 xs));
      ("p99_ms", Json.Number (percentile_ms 99.0 xs));
      ("mean_ms", Json.Number (1000.0 *. Core.Stats.mean xs));
    ]

let run ~seed ~requests ~jobs ~out =
  let rng = Core.Rng.create seed in
  let devices = [ Core.Presets.example_6q (); Core.Presets.poughkeepsie (); Core.Presets.johannesburg () ] in
  let registry = Registry.create () in
  List.iter
    (fun d ->
      ignore
        (Registry.add_static registry ~id:(Core.Device.name d) ~device:d
           ~xtalk:(Core.Device.ground_truth d)))
    devices;
  let templates =
    List.concat_map
      (fun d ->
        swap_templates d ~per_device:4
        @ qaoa_templates d ~rng ~per_device:2
        @ hs_templates d ~per_device:2)
      devices
  in
  let templates = Array.of_list (Core.Rng.shuffle_list rng templates) in
  let ntempl = Array.length templates in
  (* Zipf-skewed popularity: rank r drawn with weight 1/(r+1). *)
  let weighted =
    List.init ntempl (fun r -> (1.0 /. float_of_int (r + 1), templates.(r)))
  in
  let workload = List.init requests (fun _ -> Core.Rng.weighted_choice rng weighted) in
  Printf.printf "serve bench: %d requests over %d templates on %d devices (seed %d, jobs %d)\n%!"
    requests ntempl (List.length devices) seed jobs;

  (* Phase 1: sequential replay, per-request wall-clock latency. *)
  let config = { Service.default_config with Service.jobs = 1 } in
  let service = Service.create ~config registry in
  let served = Hashtbl.create 64 in  (* key -> (template, served schedule json) *)
  let cold = ref [] and cached = ref [] in
  let hit_keys = Hashtbl.create 64 in
  let rung_tally = Hashtbl.create 8 in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun tpl ->
      let t1 = Unix.gettimeofday () in
      match Service.compile service ~device:tpl.device tpl.circuit with
      | Error e ->
        Printf.eprintf "compile of %s failed: %s\n" tpl.label e;
        exit 1
      | Ok o ->
        let dt = Unix.gettimeofday () -. t1 in
        let rung = Core.Xtalk_sched.rung_name o.Service.stats.Core.Xtalk_sched.rung in
        Hashtbl.replace rung_tally rung (1 + Option.value ~default:0 (Hashtbl.find_opt rung_tally rung));
        let sched_json = Json.to_string (Wire.schedule_to_json o.Service.schedule) in
        if o.Service.cached then begin
          cached := dt :: !cached;
          Hashtbl.replace hit_keys o.Service.key sched_json
        end
        else begin
          cold := dt :: !cold;
          if not (Hashtbl.mem served o.Service.key) then
            Hashtbl.add served o.Service.key (tpl, sched_json)
        end)
    workload;
  let sequential_seconds = Unix.gettimeofday () -. t0 in
  let hits = List.length !cached and misses = List.length !cold in
  let hit_rate = float_of_int hits /. float_of_int requests in

  (* Phase 2: verify every hit against a cold compile.  All hits of a
     key serve the same immutable cache entry, so one cold compile per
     hit key covers them all. *)
  let mismatches = ref 0 and verified_keys = ref 0 in
  Hashtbl.iter
    (fun key hit_json ->
      incr verified_keys;
      let tpl, _ =
        match Hashtbl.find_opt served key with
        | Some v -> v
        | None ->
          Printf.eprintf "internal: hit key %s never compiled cold\n" key;
          exit 1
      in
      let fresh = Service.create ~config registry in
      match Service.compile fresh ~device:tpl.device tpl.circuit with
      | Error e ->
        Printf.eprintf "verification compile of %s failed: %s\n" tpl.label e;
        exit 1
      | Ok o ->
        let cold_json = Json.to_string (Wire.schedule_to_json o.Service.schedule) in
        if cold_json <> hit_json then begin
          incr mismatches;
          Printf.eprintf "MISMATCH: cached %s differs from cold compile\n" tpl.label
        end)
    hit_keys;

  (* Phase 3: batched replay through handle_batch on a cold cache —
     the Pool-parallel path. *)
  let bconfig = { Service.default_config with Service.jobs } in
  let bservice = Service.create ~config:bconfig registry in
  let reqs =
    List.mapi
      (fun i tpl ->
        Wire.Compile
          {
            id = Printf.sprintf "b%d" i;
            device = tpl.device;
            circuit = tpl.circuit;
            params = Wire.default_params;
          })
      workload
  in
  let rec chunks acc = function
    | [] -> List.rev acc
    | rest ->
      let n = min bconfig.Service.queue_bound (List.length rest) in
      let batch = List.filteri (fun i _ -> i < n) rest in
      let tail = List.filteri (fun i _ -> i >= n) rest in
      chunks (batch :: acc) tail
  in
  let t2 = Unix.gettimeofday () in
  let responses = List.concat_map (fun batch -> Service.handle_batch bservice batch) (chunks [] reqs) in
  let batched_seconds = Unix.gettimeofday () -. t2 in
  let overloaded =
    List.length
      (List.filter
         (fun r -> match Json.find_str "status" r with Ok "overloaded" -> true | _ -> false)
         responses)
  in

  let c = Cache.counters (Service.cache service) in
  let cold_p50 = percentile_ms 50.0 !cold and cached_p50 = percentile_ms 50.0 !cached in
  let speedup = cold_p50 /. Float.max 1e-9 cached_p50 in
  let doc =
    Json.Object
      [
        ("requests", Json.Number (float_of_int requests));
        ("templates", Json.Number (float_of_int ntempl));
        ("seed", Json.Number (float_of_int seed));
        ("jobs", Json.Number (float_of_int jobs));
        ("hits", Json.Number (float_of_int hits));
        ("misses", Json.Number (float_of_int misses));
        ("hit_rate", Json.Number hit_rate);
        ("cold", summary_json !cold);
        ("cached", summary_json !cached);
        ("speedup_p50", Json.Number speedup);
        ( "throughput_rps",
          Json.Object
            [
              ("sequential", Json.Number (float_of_int requests /. sequential_seconds));
              ("batched", Json.Number (float_of_int requests /. batched_seconds));
            ] );
        ( "rungs",
          Json.Object
            (List.filter_map
               (fun r ->
                 let name = Core.Xtalk_sched.rung_name r in
                 Option.map (fun n -> (name, Json.Number (float_of_int n)))
                   (Hashtbl.find_opt rung_tally name))
               Core.Xtalk_sched.all_rungs) );
        ( "verify",
          Json.Object
            [
              ("verified_keys", Json.Number (float_of_int !verified_keys));
              ("verified_hits", Json.Number (float_of_int hits));
              ("mismatches", Json.Number (float_of_int !mismatches));
            ] );
        ("overloaded", Json.Number (float_of_int overloaded));
        ( "cache",
          Json.Object
            [
              ("hits", Json.Number (float_of_int c.Cache.hits));
              ("misses", Json.Number (float_of_int c.Cache.misses));
              ("evictions", Json.Number (float_of_int c.Cache.evictions));
              ("insertions", Json.Number (float_of_int c.Cache.insertions));
              ("size", Json.Number (float_of_int c.Cache.size));
            ] );
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "hit rate %.1f%% (%d/%d), cold p50 %.2f ms, cached p50 %.4f ms (%.0fx), seq %.1f req/s, batched %.1f req/s\n"
    (100.0 *. hit_rate) hits requests cold_p50 cached_p50 speedup
    (float_of_int requests /. sequential_seconds)
    (float_of_int requests /. batched_seconds);
  Printf.printf "verified %d hit keys against cold compiles: %d mismatches\n" !verified_keys
    !mismatches;
  Printf.printf "wrote %s\n" out;
  if hit_rate <= 0.5 || speedup < 10.0 || !mismatches > 0 then begin
    Printf.eprintf "serve bench FAILED: hit rate, speedup, or hit fidelity below target\n";
    exit 1
  end
