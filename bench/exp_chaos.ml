(* Chaos campaign for the hardened compilation service (DESIGN.md
   section 9): N seeded runs, each replaying a deterministic workload
   whose frames arrive torn / bit-flipped / oversized, whose cold
   compiles die or stall, and whose journal appends hit a simulated
   full disk — then a simulated kill -9 truncates the write-ahead
   journal at a seeded byte offset and a fresh service recovers from
   snapshot + journal replay.

   Three properties are asserted per seed and aggregated into
   BENCH_chaos.json:
     - availability: every non-blank frame gets exactly one parseable,
       typed response (no hangs, no unhandled exceptions);
     - zero corruption: every recovered cache entry is bit-identical
       to the entry the pre-kill service held under that key;
     - fidelity: recovered deadline-free entries match a cold compile
       of the oracle's circuit bit for bit.

   `client` is the out-of-process counterpart used by the ci.sh smoke
   test: record a clean workload's responses, generate load while the
   daemon is kill -9'd, then verify the restarted daemon serves the
   same keys and schedules. *)

module Service = Core.Service
module Wire = Core.Wire
module Server = Core.Server
module Registry = Core.Registry
module Cache = Core.Cache
module Journal = Core.Journal
module Breaker = Core.Breaker
module Json = Core.Json
module Faults = Core.Service_faults

(* ---- deterministic workload ---- *)

let build_circuit device i =
  let topo = Core.Device.topology device in
  let edges = Array.of_list (Core.Topology.edges topo) in
  let nq = Core.Device.nqubits device in
  let a, b = edges.(i mod Array.length edges) in
  let c = Core.Circuit.create nq in
  let c = Core.Circuit.add c Core.Gate.H [ a ] in
  let c = Core.Circuit.add c Core.Gate.Cnot [ a; b ] in
  let c =
    if i mod 3 = 0 then
      Core.Circuit.add c (Core.Gate.Rz (0.1 +. (0.05 *. float_of_int (i mod 4)))) [ b ]
    else c
  in
  let c = if i mod 4 = 1 then Core.Circuit.add c Core.Gate.Cnot [ a; b ] else c in
  Core.Circuit.measure_all c

(* Twelve distinct compile templates cycled through the workload, so
   the cache sees both misses and repeats. *)
let campaign_request device i =
  match i mod 13 with
  | 9 -> Wire.Health { id = Printf.sprintf "h%d" i }
  | 11 -> Wire.Ping { id = Printf.sprintf "p%d" i }
  | _ ->
    let t = i mod 12 in
    let params =
      {
        Wire.default_params with
        Wire.deadline = (if t mod 4 = 3 then Some 0.05 else None);
        ladder_start =
          (if t mod 7 = 5 then Core.Xtalk_sched.Greedy else Core.Xtalk_sched.Exact);
      }
    in
    Wire.Compile
      {
        id = Printf.sprintf "c%d" i;
        device = "example6q";
        circuit = build_circuit device t;
        params;
      }

let encode req = Json.to_string ~indent:false (Wire.request_to_json req)

let rec batches k = function
  | [] -> []
  | rest ->
    let head = List.filteri (fun i _ -> i < k) rest in
    let tail = List.filteri (fun i _ -> i >= k) rest in
    head :: batches k tail

(* ---- one seeded chaos run ---- *)

type seed_report = {
  seed : int;
  frames : int;
  expected : int;  (* non-blank frames sent, each owed one response *)
  responses : int;
  typed : int;
  status_hist : (string * int) list;
  frame_faults : int;
  journal_len : int;
  kill_off : int;
  pre_kill_entries : int;
  recovered_entries : int;
  replayed : int;
  torn : bool;
  corrupt_entries : int;
  mismatches : int;
}

let run_seed ~seed ~requests ~jobs ~dir =
  let device = Core.Presets.example_6q () in
  let registry = Registry.create () in
  ignore
    (Registry.add_static registry ~id:"example6q" ~device
       ~xtalk:(Core.Device.ground_truth device));
  let config =
    {
      Service.jobs;
      queue_bound = 8;
      cache_capacity = 64;
      max_compile_seconds = Some 5.0;
      deadline_grace = 2.0;
      breaker =
        { Breaker.threshold = 3; cooloff_seconds = 0.05; min_rung = Core.Xtalk_sched.Parallel };
      checkpoint_every = 6;
    }
  in
  let cache_file = Filename.concat dir (Printf.sprintf "chaos_cache_%d.json" seed) in
  let journal_file = cache_file ^ ".journal" in
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ cache_file; journal_file ];
  let service = Service.create ~config registry in
  (match Service.enable_persistence service ~cache_file ~fsync:false () with
  | Ok () -> ()
  | Error e ->
    Printf.eprintf "chaos: cannot enable persistence: %s\n" e;
    exit 1);
  let plan = Faults.create ~seed () in
  Service.set_compile_fault service (Some (fun ~nth -> Faults.compile_fault plan ~nth));
  (match Service.persistence_journal service with
  | Some j -> Journal.set_fault j (Some (fun ~nth -> Faults.journal_fault plan ~nth))
  | None -> ());
  let max_frame = 4096 in

  (* Oracle: cache key -> (circuit, params), for post-recovery
     fidelity checks, derived the same way the service derives keys. *)
  let epoch = (Option.get (Registry.find registry "example6q")).Registry.epoch in
  let oracle = Hashtbl.create 32 in
  let reqs = List.init requests (fun i -> campaign_request device i) in
  List.iter
    (function
      | Wire.Compile { circuit; params; _ } ->
        let canon = Core.Canon.normalize ~nqubits:(Core.Device.nqubits device) circuit in
        let key = Service.cache_key ~device_id:"example6q" ~epoch ~params canon in
        Hashtbl.replace oracle key (circuit, params)
      | _ -> ())
    reqs;

  (* Corrupt the frames per the plan and push them through the server
     entry point in pipelined batches. *)
  let frame_faults = ref 0 in
  let lines =
    List.mapi
      (fun i req ->
        let line, fault = Faults.corrupt_frame plan ~request:i ~max_frame (encode req) in
        (match fault with Some _ -> incr frame_faults | None -> ());
        line)
      reqs
  in
  let expected = List.length (List.filter (fun l -> String.trim l <> "") lines) in
  let status_hist = Hashtbl.create 8 in
  let typed = ref 0 in
  let nresponses = ref 0 in
  List.iter
    (fun batch ->
      let out, _stop = Server.handle_lines ~max_frame service batch in
      List.iter
        (fun line ->
          incr nresponses;
          match Json.of_string line with
          | Error _ -> ()
          | Ok doc -> (
            match Json.find_str "status" doc with
            | Error _ -> ()
            | Ok status ->
              incr typed;
              Hashtbl.replace status_hist status
                (1 + Option.value ~default:0 (Hashtbl.find_opt status_hist status))))
        out)
    (batches 8 lines);

  (* Snapshot what the live cache held at kill time: recovery may
     lose a suffix (records past the kill offset) but must never
     invent or damage an entry. *)
  let pre_kill = Hashtbl.create 64 in
  List.iter
    (fun key ->
      match Cache.find (Service.cache service) key with
      | Some entry ->
        Hashtbl.replace pre_kill key (Json.to_string (Cache.entry_to_json entry))
      | None -> ())
    (Cache.keys_newest_first (Service.cache service));

  (* kill -9: truncate the journal at a seeded byte offset.  No
     checkpoint, no close — the dying process gets no goodbye. *)
  let journal_len =
    if Sys.file_exists journal_file then
      let ic = open_in_bin journal_file in
      let n = in_channel_length ic in
      close_in ic;
      n
    else 0
  in
  let kill_off = Faults.kill_offset plan ~len:journal_len in
  if journal_len > 0 then begin
    let fd = Unix.openfile journal_file [ Unix.O_WRONLY ] 0o644 in
    Unix.ftruncate fd kill_off;
    Unix.close fd
  end;

  (* Recover into a fresh service and check the three properties. *)
  let service2 = Service.create ~config registry in
  let recovery =
    match Service.recover service2 ~cache_file ~fsync:false () with
    | Ok r -> r
    | Error e ->
      Printf.eprintf "chaos seed %d: recovery failed: %s\n" seed e;
      exit 1
  in
  let corrupt = ref 0 in
  let recovered_keys = Cache.keys_newest_first (Service.cache service2) in
  List.iter
    (fun key ->
      match Cache.find (Service.cache service2) key with
      | None -> ()
      | Some entry -> (
        let got = Json.to_string (Cache.entry_to_json entry) in
        match Hashtbl.find_opt pre_kill key with
        | Some want when want = got -> ()
        | _ -> incr corrupt))
    recovered_keys;
  let mismatches = ref 0 in
  let verifier = Service.create ~config registry in
  List.iter
    (fun key ->
      match Hashtbl.find_opt oracle key with
      | Some (circuit, params) when params.Wire.deadline = None -> (
        match Cache.find (Service.cache service2) key with
        | None -> ()
        | Some entry -> (
          match Service.compile verifier ~device:"example6q" ~params circuit with
          | Error e ->
            Printf.eprintf "chaos seed %d: verify compile failed: %s\n" seed e;
            incr mismatches
          | Ok o ->
            let cold = Json.to_string (Wire.schedule_to_json o.Service.schedule) in
            let cached = Json.to_string (Wire.schedule_to_json entry.Cache.schedule) in
            if o.Service.key <> key || cold <> cached then incr mismatches))
      | _ -> ())
    recovered_keys;
  List.iter (fun p -> if Sys.file_exists p then Sys.remove p) [ cache_file; journal_file ];
  {
    seed;
    frames = List.length lines;
    expected;
    responses = !nresponses;
    typed = !typed;
    status_hist =
      List.filter_map
        (fun s -> Option.map (fun n -> (s, n)) (Hashtbl.find_opt status_hist s))
        [
          "ok";
          "error";
          "overloaded";
          "deadline_exceeded";
          "breaker_open";
          "frame_too_large";
          "internal_error";
        ];
    frame_faults = !frame_faults;
    journal_len;
    kill_off;
    pre_kill_entries = Hashtbl.length pre_kill;
    recovered_entries = List.length recovered_keys;
    replayed = recovery.Service.journal_entries;
    torn = recovery.Service.torn;
    corrupt_entries = !corrupt;
    mismatches = !mismatches;
  }

let seed_json r =
  Json.Object
    [
      ("seed", Json.Number (float_of_int r.seed));
      ("frames", Json.Number (float_of_int r.frames));
      ("expected_responses", Json.Number (float_of_int r.expected));
      ("responses", Json.Number (float_of_int r.responses));
      ("typed", Json.Number (float_of_int r.typed));
      ( "statuses",
        Json.Object (List.map (fun (s, n) -> (s, Json.Number (float_of_int n))) r.status_hist)
      );
      ("frame_faults", Json.Number (float_of_int r.frame_faults));
      ("journal_bytes", Json.Number (float_of_int r.journal_len));
      ("kill_offset", Json.Number (float_of_int r.kill_off));
      ("pre_kill_entries", Json.Number (float_of_int r.pre_kill_entries));
      ("recovered_entries", Json.Number (float_of_int r.recovered_entries));
      ("journal_replayed", Json.Number (float_of_int r.replayed));
      ("torn_tail", Json.Bool r.torn);
      ("corrupt_entries", Json.Number (float_of_int r.corrupt_entries));
      ("verify_mismatches", Json.Number (float_of_int r.mismatches));
    ]

let run ~seeds ~requests ~jobs ~dir ~out =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Printf.printf "chaos bench: %d seeds x %d requests (jobs %d)\n%!" seeds requests jobs;
  let reports =
    List.init seeds (fun k ->
        let r = run_seed ~seed:(1000 + k) ~requests ~jobs ~dir in
        Printf.printf
          "  seed %d: %d/%d typed, journal %dB killed at %d, recovered %d/%d (replayed %d%s), corrupt %d, mismatches %d\n%!"
          r.seed r.typed r.expected r.journal_len r.kill_off r.recovered_entries
          r.pre_kill_entries r.replayed
          (if r.torn then ", torn tail" else "")
          r.corrupt_entries r.mismatches;
        r)
  in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let expected = total (fun r -> r.expected) in
  let typed = total (fun r -> r.typed) in
  let availability = float_of_int typed /. float_of_int (max 1 expected) in
  let corrupt = total (fun r -> r.corrupt_entries) in
  let mismatches = total (fun r -> r.mismatches) in
  let torn_runs = List.length (List.filter (fun r -> r.torn) reports) in
  let doc =
    Json.Object
      [
        ("seeds", Json.Number (float_of_int seeds));
        ("requests_per_seed", Json.Number (float_of_int requests));
        ("jobs", Json.Number (float_of_int jobs));
        ("expected_responses", Json.Number (float_of_int expected));
        ("typed_responses", Json.Number (float_of_int typed));
        ("availability", Json.Number availability);
        ("frame_faults", Json.Number (float_of_int (total (fun r -> r.frame_faults))));
        ("torn_tail_runs", Json.Number (float_of_int torn_runs));
        ("journal_replayed", Json.Number (float_of_int (total (fun r -> r.replayed))));
        ("recovered_entries", Json.Number (float_of_int (total (fun r -> r.recovered_entries))));
        ("corrupt_entries", Json.Number (float_of_int corrupt));
        ("verify_mismatches", Json.Number (float_of_int mismatches));
        ("per_seed", Json.Array (List.map seed_json reports));
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "availability %.4f (%d/%d typed), %d corrupt entries, %d verify mismatches, %d/%d torn tails\n"
    availability typed expected corrupt mismatches torn_runs seeds;
  Printf.printf "wrote %s\n" out;
  if availability < 1.0 || corrupt > 0 || mismatches > 0 then begin
    Printf.eprintf "chaos bench FAILED: availability, corruption, or fidelity target missed\n";
    exit 1
  end

(* ---- out-of-process client (ci.sh kill -9 smoke test) ---- *)

let clean_request device i =
  Wire.Compile
    {
      id = Printf.sprintf "c%d" i;
      device = "example6q";
      circuit = build_circuit device (i mod 12);
      params = Wire.default_params;
    }

let connect ~socket ~retries =
  let rec go n =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> Some fd
    | exception Unix.Unix_error _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if n <= 0 then None
      else begin
        Unix.sleepf 0.1;
        go (n - 1)
      end
  in
  go retries

let send_all fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let rec go ofs =
    if ofs < len then
      match Unix.write fd b ofs (len - ofs) with
      | n -> go (ofs + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ofs
  in
  go 0

(* Lockstep request/response (one batch per request): a pipelined
   blast of N compiles would trip the daemon's own admission control,
   which is not what record/verify are probing. *)
let roundtrip ~socket reqs =
  match connect ~socket ~retries:50 with
  | None ->
    Printf.eprintf "chaos client: cannot connect to %s\n" socket;
    exit 1
  | Some fd ->
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 60.0;
    let buf = Bytes.create 65536 in
    let acc = Buffer.create 4096 in
    let rec read_line () =
      match String.index_opt (Buffer.contents acc) '\n' with
      | Some i ->
        let s = Buffer.contents acc in
        Buffer.clear acc;
        Buffer.add_string acc (String.sub s (i + 1) (String.length s - i - 1));
        Some (String.sub s 0 i)
      | None -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> None
        | n ->
          Buffer.add_subbytes acc buf 0 n;
          read_line ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_line ()
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Printf.eprintf "chaos client: timed out waiting for a response\n";
          exit 1)
    in
    let lines =
      List.filter_map
        (fun r ->
          send_all fd (encode r ^ "\n");
          read_line ())
        reqs
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    List.filter (fun l -> String.trim l <> "") lines

let response_map lines =
  let map = Hashtbl.create 64 in
  List.iter
    (fun line ->
      match Json.of_string line with
      | Error _ -> ()
      | Ok doc -> (
        match (Json.find_str "id" doc, Json.find_str "status" doc) with
        | Ok id, Ok status -> Hashtbl.replace map id (status, doc)
        | _ -> ()))
    lines;
  map

let client ~socket ~mode ~file ~requests ~seed ~min_cached =
  let device = Core.Presets.example_6q () in
  let reqs = List.init requests (fun i -> clean_request device i) in
  match mode with
  | "load" ->
    (* Best-effort pressure while the driver kills the daemon: seed
       makes every key fresh (distinct omega), so the daemon is busy
       journaling cold compiles when the kill lands.  Write slowly,
       ignore every failure, always exit 0. *)
    let load_req i =
      let params =
        { Wire.default_params with Wire.omega = 0.31 +. (0.001 *. float_of_int (seed + i)) }
      in
      Wire.Compile
        {
          id = Printf.sprintf "l%d" i;
          device = "example6q";
          circuit = build_circuit device (i mod 12);
          params;
        }
    in
    (match connect ~socket ~retries:20 with
    | None -> ()
    | Some fd ->
      (try
         List.iter
           (fun i ->
             send_all fd (encode (load_req i) ^ "\n");
             Unix.sleepf 0.02)
           (List.init requests Fun.id)
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ()));
    exit 0
  | "record" ->
    let map = response_map (roundtrip ~socket reqs) in
    let entries =
      List.filter_map
        (fun r ->
          let id = Wire.request_id r in
          match Hashtbl.find_opt map id with
          | Some ("ok", doc) ->
            let key = Result.value ~default:"" (Json.find_str "key" doc) in
            let sched =
              match Json.member "schedule" doc with
              | Some s -> Json.to_string ~indent:false s
              | None -> ""
            in
            Some (id, Json.Object [ ("key", Json.String key); ("schedule", Json.String sched) ])
          | _ ->
            Printf.eprintf "chaos client: no ok response for %s\n" id;
            exit 1)
        reqs
    in
    let oc = open_out file in
    output_string oc (Json.to_string (Json.Object entries));
    output_string oc "\n";
    close_out oc;
    Printf.printf "chaos client: recorded %d responses to %s\n" (List.length entries) file;
    exit 0
  | "verify" ->
    let expected =
      let ic = open_in_bin file in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      match Json.of_string text with
      | Ok (Json.Object fields) -> fields
      | _ ->
        Printf.eprintf "chaos client: cannot parse %s\n" file;
        exit 1
    in
    let map = response_map (roundtrip ~socket reqs) in
    let mismatches = ref 0 in
    let cached = ref 0 in
    List.iter
      (fun (id, want) ->
        let want_key = Result.value ~default:"" (Json.find_str "key" want) in
        let want_sched = Result.value ~default:"" (Json.find_str "schedule" want) in
        match Hashtbl.find_opt map id with
        | Some ("ok", doc) ->
          let key = Result.value ~default:"" (Json.find_str "key" doc) in
          let sched =
            match Json.member "schedule" doc with
            | Some s -> Json.to_string ~indent:false s
            | None -> ""
          in
          (match Json.member "cached" doc with
          | Some (Json.Bool true) -> incr cached
          | _ -> ());
          if key <> want_key || sched <> want_sched then begin
            incr mismatches;
            Printf.eprintf "chaos client: MISMATCH on %s\n" id
          end
        | Some (status, _) ->
          incr mismatches;
          Printf.eprintf "chaos client: %s answered %s, expected ok\n" id status
        | None ->
          incr mismatches;
          Printf.eprintf "chaos client: no response for %s\n" id)
      expected;
    Printf.printf "chaos client: verified %d ids, %d cached, %d mismatches\n"
      (List.length expected) !cached !mismatches;
    if !mismatches > 0 || !cached < min_cached then begin
      if !cached < min_cached then
        Printf.eprintf "chaos client: only %d cached responses (< %d): recovery lost the cache\n"
          !cached min_cached;
      exit 1
    end;
    exit 0
  | other ->
    Printf.eprintf "chaos client: unknown --mode %s (record | verify | load)\n" other;
    exit 2
