(* Fault-injected soak campaign over the operational loop (see
   DESIGN.md section 7): N simulated days of characterize -> persist ->
   reload -> compile on a drifting device, with a deterministic fault
   plan attacking every layer.  Reports compile availability, the
   degradation-rung histogram, quarantined snapshots, and the error
   inflation caused by stale characterization data. *)

let run ~days ~seed ~jobs ~device_name ~faults ~dir ~out =
  let device =
    match String.lowercase_ascii device_name with
    | "example6q" | "example" -> Core.Presets.example_6q ()
    | name -> (
      match Core.Presets.by_name name with
      | Some d -> d
      | None ->
        Printf.eprintf "unknown device %s\n" name;
        exit 2)
  in
  let config = { Core.Soak.default_config with days; seed; jobs } in
  let fault_config =
    if faults then Core.Fault_plan.default_config else Core.Fault_plan.none
  in
  Printf.printf "soak: %d days on %s, seed %d, faults %s\n%!" days
    (Core.Device.name device) seed (if faults then "on" else "off");
  let t0 = Sys.time () in
  let report = Core.Soak.run ~config ~fault_config ~dir device in
  Printf.printf "campaign done in %.1f s (CPU)\n" (Sys.time () -. t0);
  Printf.printf "compiles: %d, availability: %.1f%%\n" report.Core.Soak.total_compiles
    (100.0 *. report.Core.Soak.availability);
  Printf.printf "degradation rungs:";
  List.iter
    (fun (name, n) -> if n > 0 then Printf.printf " %s=%d" name n)
    report.Core.Soak.rung_histogram;
  print_newline ();
  Printf.printf
    "snapshots corrupted on disk: %d, quarantined: %d, silently ingested: %d\n"
    report.Core.Soak.total_snapshot_faults report.Core.Soak.total_quarantined
    report.Core.Soak.total_corrupt_ingested;
  Printf.printf "experiment faults injected: %d\n" report.Core.Soak.total_experiment_faults;
  Printf.printf "mean staleness error inflation: %+.2f%%\n"
    (100.0 *. report.Core.Soak.mean_error_inflation);
  let json = Core.Soak.report_to_json report in
  let oc = open_out out in
  output_string oc (Core.Json.to_string json);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n" out;
  if report.Core.Soak.availability < 1.0 || report.Core.Soak.total_corrupt_ingested > 0
  then begin
    Printf.eprintf "soak FAILED: availability or corruption-containment violated\n";
    exit 1
  end
