(* Scheduler-core benchmark: the fast branch-and-bound engine (warm
   starts, two-watched-literal propagation, incremental bounds,
   cost-guided branching) against the legacy seed engine, on the fig8
   QAOA and fig9 Hidden Shift workloads at the exact and clustered
   rungs.

   Writes BENCH_sched.json and exits nonzero unless
   - every fast objective is equal-or-better than legacy,
   - fast clustered schedules are bit-identical at --jobs 1/2/4, and
   - aggregate nodes (and, outside --smoke, aggregate wall-clock) are
     at least 2x lower with the fast engine on both rungs. *)

module Sched = Core.Xtalk_sched

let device = Core.Presets.poughkeepsie ()
let xtalk = Core.Device.ground_truth device

let workloads () =
  let regions = Core.Presets.qaoa_regions device in
  let region_name region = String.concat ";" (List.map string_of_int region) in
  List.map
    (fun region ->
      let qaoa =
        Core.Qaoa.build device
          ~rng:(Core.Rng.create (Hashtbl.hash ("fig8-angles", region)))
          ~region
      in
      (Printf.sprintf "fig8-qaoa[%s]" (region_name region), qaoa.Core.Qaoa.circuit))
    regions
  @ List.concat_map
      (fun redundancy ->
        List.map
          (fun region ->
            let hs =
              Core.Hidden_shift.build device ~region ~shift:[ true; false; true; true ]
                ~redundancy
            in
            ( Printf.sprintf "fig9-hs%d[%s]" redundancy (region_name region),
              hs.Core.Hidden_shift.circuit ))
          regions)
      [ 0; 1 ]

let fingerprint sched =
  List.map
    (fun g ->
      ( g.Core.Gate.id,
        Core.Schedule.start sched g.Core.Gate.id,
        Core.Schedule.duration sched g.Core.Gate.id ))
    (Core.Circuit.gates (Core.Schedule.circuit sched))

type measurement = {
  nodes : int;
  objective : float;
  wall : float;  (** best of repeats *)
  rung : string;
  fp : (int * float * float) list;
}

let measure ~engine ~rung ~jobs ~repeats circuit =
  let run () =
    let t0 = Unix.gettimeofday () in
    let sched, stats =
      match rung with
      | `Exact ->
        (* Raise the exact-rung gate so even the 36-pair Hidden Shift
           instances get a single whole-problem solve. *)
        Sched.schedule ~engine ~jobs ~omega:0.5 ~max_exact_pairs:1000 ~device ~xtalk
          circuit
      | `Clustered ->
        Sched.schedule ~engine ~jobs ~omega:0.5 ~ladder_start:Sched.Clustered ~device
          ~xtalk circuit
    in
    (Unix.gettimeofday () -. t0, sched, stats)
  in
  let best = ref None in
  for _ = 1 to max 1 repeats do
    let dt, sched, stats = run () in
    match !best with
    | Some (dt0, _, _) when dt0 <= dt -> ()
    | _ -> best := Some (dt, sched, stats)
  done;
  match !best with
  | None -> assert false
  | Some (dt, sched, stats) ->
    {
      nodes = stats.Sched.nodes;
      objective = stats.Sched.objective;
      wall = dt;
      rung = Sched.rung_name stats.Sched.rung;
      fp = fingerprint sched;
    }

let run ~smoke ~jobs ~repeats ~out =
  let repeats = if smoke then 1 else repeats in
  let jobs_list = if smoke then [ 1; jobs ] else [ 1; 2; jobs ] in
  let jobs_list = List.sort_uniq compare jobs_list in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let totals = Hashtbl.create 8 in
  let tally key m =
    let n0, w0 = Option.value ~default:(0, 0.0) (Hashtbl.find_opt totals key) in
    Hashtbl.replace totals key (n0 + m.nodes, w0 +. m.wall)
  in
  Printf.printf "scheduler core benchmark (%s, %d repeat%s)\n%!"
    (if smoke then "smoke" else "full")
    repeats
    (if repeats = 1 then "" else "s");
  let entries =
    List.concat_map
      (fun (name, circuit) ->
        List.map
          (fun rung ->
            let rung_name = match rung with `Exact -> "exact" | `Clustered -> "clustered" in
            let legacy = measure ~engine:Core.Solver.Legacy ~rung ~jobs:1 ~repeats circuit in
            let fast = measure ~engine:Core.Solver.Fast ~rung ~jobs:1 ~repeats circuit in
            tally ("legacy-" ^ rung_name) legacy;
            tally ("fast-" ^ rung_name) fast;
            if fast.objective > legacy.objective +. 1e-9 then
              fail "%s %s: fast objective %.9f worse than legacy %.9f" name rung_name
                fast.objective legacy.objective;
            (* Bit-identical schedules at every --jobs (the clustered
               rung is the only pool-parallel path, but the exact rung
               must be jobs-insensitive too). *)
            List.iter
              (fun j ->
                if j > 1 then begin
                  let m = measure ~engine:Core.Solver.Fast ~rung ~jobs:j ~repeats:1 circuit in
                  if m.fp <> fast.fp then
                    fail "%s %s: schedule differs between --jobs 1 and --jobs %d" name
                      rung_name j;
                  if m.nodes <> fast.nodes then
                    fail "%s %s: node count differs between --jobs 1 and --jobs %d" name
                      rung_name j
                end)
              jobs_list;
            Printf.printf
              "  %-22s %-9s legacy: %6d nodes %8.2f ms | fast: %6d nodes %8.2f ms (%s)\n%!"
              name rung_name legacy.nodes (legacy.wall *. 1e3) fast.nodes
              (fast.wall *. 1e3) fast.rung;
            Core.Json.Object
              [
                ("workload", Core.Json.String name);
                ("rung", Core.Json.String rung_name);
                ("legacy_nodes", Core.Json.Number (float_of_int legacy.nodes));
                ("fast_nodes", Core.Json.Number (float_of_int fast.nodes));
                ("legacy_wall_seconds", Core.Json.Number legacy.wall);
                ("fast_wall_seconds", Core.Json.Number fast.wall);
                ("legacy_objective", Core.Json.Number legacy.objective);
                ("fast_objective", Core.Json.Number fast.objective);
                ("served_rung", Core.Json.String fast.rung);
              ])
          [ `Exact; `Clustered ])
      (workloads ())
  in
  let aggregates =
    List.map
      (fun rung ->
        let ln, lw = Option.value ~default:(0, 0.0) (Hashtbl.find_opt totals ("legacy-" ^ rung)) in
        let fn, fw = Option.value ~default:(0, 0.0) (Hashtbl.find_opt totals ("fast-" ^ rung)) in
        let node_ratio = float_of_int ln /. float_of_int (max 1 fn) in
        let wall_ratio = lw /. Float.max 1e-9 fw in
        Printf.printf
          "TOTAL %-9s nodes %d -> %d (%.2fx)   wall %.1f ms -> %.1f ms (%.2fx)\n%!" rung
          ln fn node_ratio (lw *. 1e3) (fw *. 1e3) wall_ratio;
        if node_ratio < 2.0 then
          fail "%s rung: aggregate node reduction %.2fx below the 2x gate" rung node_ratio;
        if (not smoke) && wall_ratio < 2.0 then
          fail "%s rung: aggregate wall-clock speedup %.2fx below the 2x gate" rung
            wall_ratio;
        ( rung,
          Core.Json.Object
            [
              ("legacy_nodes", Core.Json.Number (float_of_int ln));
              ("fast_nodes", Core.Json.Number (float_of_int fn));
              ("node_ratio", Core.Json.Number node_ratio);
              ("legacy_wall_seconds", Core.Json.Number lw);
              ("fast_wall_seconds", Core.Json.Number fw);
              ("wall_ratio", Core.Json.Number wall_ratio);
            ] ))
      [ "exact"; "clustered" ]
  in
  let doc =
    Core.Json.Object
      [
        ("bench", Core.Json.String "scheduler core: fast vs legacy engine");
        ("device", Core.Json.String (Core.Device.name device));
        ("smoke", Core.Json.Bool smoke);
        ("repeats", Core.Json.Number (float_of_int repeats));
        ( "jobs_checked",
          Core.Json.Array (List.map (fun j -> Core.Json.Number (float_of_int j)) jobs_list)
        );
        ("workloads", Core.Json.Array entries);
        ("aggregate", Core.Json.Object aggregates);
        ( "failures",
          Core.Json.Array (List.rev_map (fun m -> Core.Json.String m) !failures) );
      ]
  in
  let oc = open_out out in
  output_string oc (Core.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if !failures <> [] then begin
    List.iter (fun m -> Printf.eprintf "FAIL: %s\n" m) (List.rev !failures);
    exit 1
  end
