(* Bechamel microbenchmarks of the core computational kernels: one
   Test.make per reproduced table/figure's dominant kernel, so the
   cost structure of the harness itself is visible.

   fig3/fig4  -> SRB circuit generation + noisy stabilizer execution
   fig5/fig7  -> XtalkSched solve on a SWAP circuit + tomography step
   fig8/fig9  -> noisy statevector execution of a QAOA instance
   fig10      -> randomized first-fit bin packing
   tab1/scale -> ParSched ASAP pass and a supremacy-scale solve *)

open Bechamel
open Toolkit

let device = Core.Presets.poughkeepsie ()
let xtalk = Core.Device.ground_truth device

let test_tableau =
  Test.make ~name:"fig3: 40-clifford SRB layer on tableau"
    (Staged.stage (fun () ->
         let rng = Core.Rng.create 1 in
         let t = Core.Tableau.create 4 in
         for _ = 1 to 40 do
           Core.Clifford2.apply_word t (Core.Clifford2.sample rng)
         done))

let srb_pair = [ (10, 15); (11, 12) ]

let test_srb =
  Test.make ~name:"fig4: one tiny SRB experiment (m in {4,16}, 64 trials)"
    (Staged.stage (fun () ->
         let rng = Core.Rng.create 2 in
         let params = { Core.Rb.lengths = [ 4; 16 ]; seeds = 1; trials = 64 } in
         ignore (Core.Rb.run device ~rng ~params srb_pair)))

let swap_circuit =
  Core.Circuit.measure_all
    (Core.Swap_circuits.build device ~src:0 ~dst:13).Core.Swap_circuits.circuit

let test_xtalksched =
  Test.make ~name:"fig5: XtalkSched solve, SWAP path 0->13"
    (Staged.stage (fun () ->
         ignore (Core.Xtalk_sched.schedule ~omega:0.5 ~device ~xtalk swap_circuit)))

let test_tomography_exec =
  Test.make ~name:"fig7: 128-trial noisy execution of a SWAP circuit"
    (Staged.stage
       (let sched = Core.Par_sched.schedule device swap_circuit in
        fun () ->
          let rng = Core.Rng.create 3 in
          ignore (Core.Exec.run device sched ~rng ~trials:128 ~backend:Core.Exec.Stabilizer)))

let qaoa_sched =
  let rng = Core.Rng.create 4 in
  let qaoa = Core.Qaoa.build device ~rng ~region:[ 5; 10; 11; 12 ] in
  fst (Core.Xtalk_sched.schedule ~omega:0.5 ~device ~xtalk qaoa.Core.Qaoa.circuit)

let test_qaoa =
  Test.make ~name:"fig8: 256-trial noisy statevector QAOA"
    (Staged.stage (fun () ->
         let rng = Core.Rng.create 5 in
         ignore (Core.Exec.run device qaoa_sched ~rng ~trials:256 ~backend:Core.Exec.Statevector)))

let ncores = Core.Pool.default_jobs ()

let test_qaoa_jobs =
  Test.make ~name:(Printf.sprintf "fig8: 256-trial noisy statevector QAOA (jobs=%d)" ncores)
    (Staged.stage (fun () ->
         let rng = Core.Rng.create 5 in
         ignore
           (Core.Exec.run ~jobs:ncores device qaoa_sched ~rng ~trials:256
              ~backend:Core.Exec.Statevector)))

let test_binpack =
  Test.make ~name:"fig10: bin packing of 1-hop SRB pairs (32 restarts)"
    (Staged.stage (fun () ->
         let rng = Core.Rng.create 6 in
         let topo = Core.Device.topology device in
         ignore
           (Core.Binpack.pack topo ~rng ~min_separation:2 ~attempts:32
              (Core.Topology.one_hop_gate_pairs topo))))

let test_parsched =
  Test.make ~name:"tab1: ParSched on a 500-gate supremacy circuit"
    (Staged.stage
       (let rng = Core.Rng.create 7 in
        let s = Core.Supremacy.build device ~rng ~nqubits:18 ~target_gates:500 in
        fun () -> ignore (Core.Par_sched.schedule device s.Core.Supremacy.circuit)))

let all_tests =
  [
    test_tableau; test_srb; test_xtalksched; test_tomography_exec; test_qaoa; test_qaoa_jobs;
    test_binpack; test_parsched;
  ]

(* Wall-clock throughput of the sharded executor on the fig8 workload,
   recorded to BENCH_exec.json so speedups are tracked across
   revisions.  Bechamel measures CPU-biased ns/run; for a multi-domain
   executor wall clock is the honest metric. *)
let bench_exec_json () =
  let trials = 256 in
  let time_run jobs =
    (* warm-up, then best-of-9 to shave scheduler noise *)
    let once () =
      let rng = Core.Rng.create 5 in
      let t0 = Unix.gettimeofday () in
      ignore (Core.Exec.run ~jobs device qaoa_sched ~rng ~trials ~backend:Core.Exec.Statevector);
      Unix.gettimeofday () -. t0
    in
    ignore (once ());
    ignore (once ());
    List.fold_left (fun acc () -> min acc (once ())) (once ()) (List.init 8 (fun _ -> ()))
  in
  let jobs_list = List.sort_uniq compare [ 1; 4; ncores ] in
  let entries =
    List.map
      (fun jobs ->
        let dt = time_run jobs in
        let rate = float_of_int trials /. dt in
        Printf.printf "exec fig8 jobs=%-2d %8.3f s  %10.1f trials/sec\n%!" jobs dt rate;
        Core.Json.Object
          [
            ("jobs", Core.Json.Number (float_of_int jobs));
            ("seconds", Core.Json.Number dt);
            ("trials_per_sec", Core.Json.Number rate);
          ])
      jobs_list
  in
  let doc =
    Core.Json.Object
      [
        ("workload", Core.Json.String "fig8: 256-trial noisy statevector QAOA");
        ("trials", Core.Json.Number (float_of_int trials));
        ("ncores", Core.Json.Number (float_of_int ncores));
        ("runs", Core.Json.Array entries);
      ]
  in
  let oc = open_out "BENCH_exec.json" in
  output_string oc (Core.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_exec.json\n%!"

let run () =
  Core.Tablefmt.section "Bechamel microbenchmarks (one kernel per table/figure)";
  let benchmark test =
    let instances = Instance.[ monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.8) ~kde:(Some 500) () in
    let raw = Benchmark.all cfg instances test in
    let results =
      Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
        Instance.monotonic_clock raw
    in
    Hashtbl.iter
      (fun name result ->
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Printf.printf "%-55s %12.1f ns/run\n" name est
        | _ -> Printf.printf "%-55s (no estimate)\n" name)
      results
  in
  List.iter benchmark all_tests;
  bench_exec_json ()
