(* Error-mitigation leaderboard benchmark: the three schedulers x
   {none, DD, ZNE, DD+ZNE} (plus the readout-mitigated column) over
   idle-heavy SWAP chains, Hidden Shift and QAOA workloads, scored by
   parity error against the noise-free value.

   Writes BENCH_mitig.json and exits nonzero unless
   - DD strictly reduces the mean error on the idle-heavy workloads
     under XtalkSched (the schedule-aware padding must pay for its
     pulses exactly where serialization creates idle windows),
   - the ZNE zero-noise estimates beat the unmitigated scale-1
     aggregate,
   - DD+ZNE is never worse than the better of DD and ZNE alone on the
     leaderboard aggregate, and
   - the full cell table is bit-identical at --jobs 1/2/4.

   Crosstalk comes from the device's ground truth (as in the scale and
   scheduler-core benches): the mitigation gates measure the executor
   and the mitigation model, not characterization quality.  Every
   workload is Clifford so the stabilizer backend carries the trial
   counts; QAOA (Ry/Rz) would force the statevector executor, which is
   orders of magnitude too slow for leaderboard trial counts. *)

let device = Core.Presets.poughkeepsie ()
let xtalk = Core.Device.ground_truth device

let schedulers () =
  [
    {
      Core.Leaderboard.s_name = "SerialSched";
      s_compile = (fun c -> Core.Serial_sched.schedule device c);
    };
    {
      Core.Leaderboard.s_name = "ParSched";
      s_compile = (fun c -> Core.Par_sched.schedule device c);
    };
    {
      Core.Leaderboard.s_name = "XtalkSched";
      s_compile =
        (fun c ->
          (* ZNE-folded circuits can triple past the SMT rungs'
             practical size; enter the ladder at the greedy rung there.
             Gate count is a property of the circuit, so the policy is
             deterministic (a wall-clock deadline would not be). *)
          let ladder_start =
            if Core.Circuit.length c > 60 then Some Core.Xtalk_sched.Greedy else None
          in
          fst
            (Core.Xtalk_sched.schedule ?ladder_start ~omega:0.5 ~jobs:1 ~device
               ~xtalk c));
    };
  ]

(* Bell pair over a SWAP chain, measured in the X basis: <XX> = +1
   ideally — the fig3/fig5 workload family turned into a parity
   observable. *)
let swap_bell_x ~src ~dst =
  let b = Core.Swap_circuits.build device ~src ~dst in
  let a, q = b.Core.Swap_circuits.bell in
  let c = b.Core.Swap_circuits.circuit in
  let c = Core.Circuit.h (Core.Circuit.h c a) q in
  Core.Circuit.measure (Core.Circuit.measure c a) q

(* Ramsey probe of the fig6 serialization/decoherence tradeoff: a Bell
   pair on (0,1) parked while a strictly-sequential CNOT chain bounces
   along the rest of the ladder, then measured in the X basis.  The
   barriers carry DAG order without touching the state, so the
   scheduler cannot ALAP the Bell creation next to its readout: the
   measured qubits idle for the chain's whole critical path, which is
   exactly the window schedule-aware DD exists for. *)
let ramsey_chain ~hops =
  let base = [ 5; 10; 15; 16; 17; 18; 19; 14; 13; 12; 7; 8; 9; 4; 3; 2 ] in
  let path = base @ List.tl (List.rev base) @ List.tl base in
  let rec chain c = function
    | a :: (b :: _ as rest) -> chain (Core.Circuit.cnot c ~control:a ~target:b) rest
    | _ -> c
  in
  let rec take k = function x :: rest when k > 0 -> x :: take (k - 1) rest | _ -> [] in
  let c = Core.Circuit.create (Core.Device.nqubits device) in
  let c = Core.Circuit.h c 0 in
  let c = Core.Circuit.cnot c ~control:0 ~target:1 in
  let used = take (hops + 1) path in
  let c = Core.Circuit.barrier c [ 0; 1; List.hd used ] in
  let c = chain c used in
  let c = Core.Circuit.barrier c [ 0; 1; List.nth used (List.length used - 1) ] in
  let c = Core.Circuit.h (Core.Circuit.h c 0) 1 in
  Core.Circuit.measure (Core.Circuit.measure c 0) 1

let workloads ~smoke =
  let region =
    match Core.Presets.qaoa_regions device with
    | r :: _ -> r
    | [] -> failwith "no benchmark region on the bench device"
  in
  let hs redundancy =
    (Core.Hidden_shift.build device ~region ~shift:[ true; false; true; true ] ~redundancy)
      .Core.Hidden_shift.circuit
  in
  let w name circuit idle_heavy =
    { Core.Leaderboard.w_name = name; w_circuit = circuit; w_idle_heavy = idle_heavy }
  in
  if smoke then
    [ w "fig6-ramsey-40" (ramsey_chain ~hops:40) true; w "fig9-hs-r1" (hs 1) false ]
  else
    [
      w "fig6-ramsey-16" (ramsey_chain ~hops:16) true;
      w "fig6-ramsey-40" (ramsey_chain ~hops:40) true;
      w "fig5-swap-0-9" (swap_bell_x ~src:0 ~dst:9) false;
      w "fig9-hs-r0" (hs 0) false;
      w "fig9-hs-r2" (hs 2) false;
    ]

let mitigation_names = List.map Core.Leaderboard.mitigation_name Core.Leaderboard.all_mitigations

(* Every float rendered with %h so the digest (and the jobs gate) sees
   exact bits, not rounded text. *)
let cell_line (c : Core.Leaderboard.cell) =
  Printf.sprintf "%s|%s|%s|%h|%h|%h|%h|%h|%h|%h|%h|%d"
    c.Core.Leaderboard.c_workload c.Core.Leaderboard.c_scheduler
    (Core.Leaderboard.mitigation_name c.Core.Leaderboard.c_mitigation)
    c.Core.Leaderboard.c_ideal c.Core.Leaderboard.c_expectation c.Core.Leaderboard.c_error
    c.Core.Leaderboard.c_readout_expectation c.Core.Leaderboard.c_readout_error
    c.Core.Leaderboard.c_residual c.Core.Leaderboard.c_makespan
    c.Core.Leaderboard.c_idle_total c.Core.Leaderboard.c_dd_pulses

let digest cells = Digest.to_hex (Digest.string (String.concat "\n" (List.map cell_line cells)))

let cell_json (c : Core.Leaderboard.cell) =
  Core.Json.Object
    [
      ("workload", Core.Json.String c.Core.Leaderboard.c_workload);
      ("idle_heavy", Core.Json.Bool c.Core.Leaderboard.c_idle_heavy);
      ("scheduler", Core.Json.String c.Core.Leaderboard.c_scheduler);
      ( "mitigation",
        Core.Json.String (Core.Leaderboard.mitigation_name c.Core.Leaderboard.c_mitigation) );
      ("ideal", Core.Json.Number c.Core.Leaderboard.c_ideal);
      ("expectation", Core.Json.Number c.Core.Leaderboard.c_expectation);
      ("error", Core.Json.Number c.Core.Leaderboard.c_error);
      ("readout_expectation", Core.Json.Number c.Core.Leaderboard.c_readout_expectation);
      ("readout_error", Core.Json.Number c.Core.Leaderboard.c_readout_error);
      ("residual", Core.Json.Number c.Core.Leaderboard.c_residual);
      ("makespan", Core.Json.Number c.Core.Leaderboard.c_makespan);
      ("idle_total", Core.Json.Number c.Core.Leaderboard.c_idle_total);
      ("dd_pulses", Core.Json.Number (float_of_int c.Core.Leaderboard.c_dd_pulses));
    ]

let run ~smoke ~jobs ~seed ~trials ~out =
  let trials = if trials > 0 then trials else if smoke then 1024 else 4096 in
  let jobs_list = List.sort_uniq compare (if smoke then [ 1; jobs ] else [ 1; 2; jobs ]) in
  let workloads = workloads ~smoke in
  let schedulers = schedulers () in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  Printf.printf "error-mitigation leaderboard (%s, %d trials, seed %d, jobs %s)\n%!"
    (if smoke then "smoke" else "full")
    trials seed
    (String.concat "/" (List.map string_of_int jobs_list));
  let table j =
    Core.Leaderboard.run ~jobs:j ~trials ~backend:Core.Exec.Stabilizer ~device
      ~schedulers ~workloads ~rng:(Core.Rng.create seed) ()
  in
  let t0 = Unix.gettimeofday () in
  let cells = table (List.hd jobs_list) in
  Printf.printf "  %d cells in %.1f s\n%!" (List.length cells) (Unix.gettimeofday () -. t0);
  (* ---- gate: bit-identical at every --jobs ---- *)
  let d0 = digest cells in
  let jobs_identical =
    List.for_all
      (fun j ->
        j = List.hd jobs_list
        ||
        let dj = digest (table j) in
        if dj <> d0 then fail "cell table differs between --jobs %d and --jobs %d" (List.hd jobs_list) j;
        dj = d0)
      jobs_list
  in
  (* ---- per-row report ---- *)
  Printf.printf "  %-16s %-12s %-8s %8s %8s %8s %6s\n" "workload" "scheduler" "mitig"
    "ideal" "error" "ro-err" "pulses";
  List.iter
    (fun (c : Core.Leaderboard.cell) ->
      Printf.printf "  %-16s %-12s %-8s %+8.4f %8.4f %8.4f %6d\n"
        c.Core.Leaderboard.c_workload c.Core.Leaderboard.c_scheduler
        (Core.Leaderboard.mitigation_name c.Core.Leaderboard.c_mitigation)
        c.Core.Leaderboard.c_ideal c.Core.Leaderboard.c_error
        c.Core.Leaderboard.c_readout_error c.Core.Leaderboard.c_dd_pulses)
    cells;
  (* ---- gate: DD beats no-DD on idle-heavy workloads under XtalkSched ---- *)
  let dd_idle =
    Core.Leaderboard.mean_error ~idle_heavy_only:true ~scheduler:"XtalkSched"
      Core.Leaderboard.Dd_only cells
  in
  let none_idle =
    Core.Leaderboard.mean_error ~idle_heavy_only:true ~scheduler:"XtalkSched"
      Core.Leaderboard.Unmitigated cells
  in
  if not (dd_idle < none_idle) then
    fail "DD does not reduce idle-heavy XtalkSched error: %.5f vs %.5f" dd_idle none_idle;
  (* ---- gate: ZNE beats unmitigated scale-1 on aggregate ---- *)
  let agg = Core.Leaderboard.aggregate cells in
  let agg_of m = List.assoc m agg in
  if not (agg_of Core.Leaderboard.Zne_only < agg_of Core.Leaderboard.Unmitigated) then
    fail "ZNE aggregate %.5f not better than unmitigated %.5f"
      (agg_of Core.Leaderboard.Zne_only)
      (agg_of Core.Leaderboard.Unmitigated);
  (* ---- gate: DD+ZNE never worse than the better single strategy ---- *)
  let best_single = Float.min (agg_of Core.Leaderboard.Dd_only) (agg_of Core.Leaderboard.Zne_only) in
  if agg_of Core.Leaderboard.Dd_zne > best_single +. 1e-9 then
    fail "DD+ZNE aggregate %.5f worse than best single strategy %.5f"
      (agg_of Core.Leaderboard.Dd_zne) best_single;
  List.iter
    (fun (m, e) ->
      Printf.printf "AGGREGATE %-8s mean error %.5f\n%!" (Core.Leaderboard.mitigation_name m) e)
    agg;
  Printf.printf "idle-heavy XtalkSched: none %.5f -> dd %.5f\n%!" none_idle dd_idle;
  let doc =
    Core.Json.Object
      [
        ("bench", Core.Json.String "error mitigation leaderboard: dd / zne / dd+zne");
        ("device", Core.Json.String (Core.Device.name device));
        ("smoke", Core.Json.Bool smoke);
        ("seed", Core.Json.Number (float_of_int seed));
        ("trials", Core.Json.Number (float_of_int trials));
        ("scales", Core.Json.Array (List.map (fun s -> Core.Json.Number (float_of_int s)) [ 1; 3; 5 ]));
        ( "jobs_checked",
          Core.Json.Array (List.map (fun j -> Core.Json.Number (float_of_int j)) jobs_list) );
        ("jobs_identical", Core.Json.Bool jobs_identical);
        ("digest", Core.Json.String d0);
        ("cells", Core.Json.Array (List.map cell_json cells));
        ( "aggregate",
          Core.Json.Object
            (List.map2
               (fun name (_, e) -> (name, Core.Json.Number e))
               mitigation_names agg) );
        ( "idle_heavy_xtalk",
          Core.Json.Object
            [
              ("none", Core.Json.Number none_idle);
              ("dd", Core.Json.Number dd_idle);
            ] );
        ( "failures",
          Core.Json.Array (List.rev_map (fun m -> Core.Json.String m) !failures) );
      ]
  in
  let oc = open_out out in
  output_string oc (Core.Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" out;
  if !failures <> [] then begin
    List.iter (fun m -> Printf.eprintf "FAIL: %s\n" m) (List.rev !failures);
    exit 1
  end
