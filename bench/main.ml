(* Experiment harness: regenerates every table and figure of the
   paper's evaluation (see DESIGN.md section 4 for the index), plus
   Bechamel microbenchmarks of the underlying kernels.

   Usage:
     dune exec bench/main.exe                 # all experiments, quick settings
     dune exec bench/main.exe -- --full       # paper-scale trial counts (slow)
     dune exec bench/main.exe -- --only fig5  # one experiment
     dune exec bench/main.exe -- --list       # available experiment ids
     dune exec bench/main.exe -- --no-bechamel
     dune exec bench/main.exe -- --bench-exec  # executor throughput -> BENCH_exec.json
     dune exec bench/main.exe -- --soak --days 10 --seed 7   # fault-injected soak
       (more soak flags: --jobs N --soak-device NAME --no-faults --soak-dir DIR
        --out FILE; writes SOAK.json)
     dune exec bench/main.exe -- --serve-bench --requests 160 --seed 7 --jobs 4
       (seeded skewed compile workload against the serving layer;
        writes BENCH_serve.json)
     dune exec bench/main.exe -- --chaos-bench --seeds 20 --requests 60 --jobs 2
       (seeded service-fault campaign: corrupted frames, failing/stalling
        compiles, full-disk journal appends, kill -9 journal truncation;
        writes BENCH_chaos.json, exits 1 unless availability = 1.0 and
        recovery is corruption-free)
     dune exec bench/main.exe -- --chaos-client --socket S --mode record|verify|load
       (out-of-process client for the ci.sh crash-recovery smoke test)
     dune exec bench/main.exe -- --bench-sched --jobs 4 --repeats 5
       (fast vs legacy solver engine on the fig8/fig9 scheduling
        workloads; writes BENCH_sched.json, exits 1 unless nodes and
        wall-clock drop >= 2x with equal-or-better objectives and
        jobs-independent schedules; --smoke runs 1 repeat and skips
        the wall-clock gate)
     dune exec bench/main.exe -- --drift-bench --days 20 --seed 7
       (simulated drift campaign over the calibration data plane:
        daily workload + drift detection + Opt-3 incremental
        re-characterization + canary-gated promotion under injected
        calibration faults; sweeps --jobs 1/2/4 and writes
        BENCH_drift.json, exits 1 unless availability is 1.0, no
        epoch skips the canary, rollbacks are bit-identical, the
        incremental cost stays under 25% of a full pass, and the
        campaign digests match across jobs; --smoke shortens it)
     dune exec bench/main.exe -- --drift-drill --socket S
       (out-of-process poisoned-epoch drill for ci.sh: inject a
        truncated merge through the calibrate op and assert the gate
        rejects it with epoch and cache intact)
     dune exec bench/main.exe -- --mitig-bench --jobs 4 --seed 7
       (error-mitigation leaderboard: schedulers x {none, dd, zne,
        dd+zne} with a readout-mitigated column, over idle-heavy SWAP
        chains, Hidden Shift and QAOA parity workloads; writes
        BENCH_mitig.json, exits 1 unless DD strictly beats no-DD on
        the idle-heavy XtalkSched slice, ZNE beats the unmitigated
        aggregate, DD+ZNE is never worse than the better single
        strategy, and the cell table is bit-identical at --jobs 1/2/4;
        --smoke shrinks workloads and trials, --trials N overrides)
     dune exec bench/main.exe -- --fleet-bench --jobs 2
       (sharded serve tier under kill-a-shard chaos: a determinism
        matrix over shard counts x jobs, then seeded single-shard
        kill -9 drills with peer-replica rebuild, plus fault seeds
        that partition/slow the replica streams and tear the replica
        tail; writes BENCH_fleet.json, exits 1 unless the matrix is
        bit-identical, zero acknowledged schedules are lost, clean
        rebuilds are byte-identical, and availability >= 0.99;
        --smoke shrinks the matrix and seed counts)
     dune exec bench/main.exe -- --fleet-drill --socket S --shards 3
       (out-of-process drill assertion for ci.sh: poll the router's
        aggregated health until every shard is live with zero
        replication lag and a failover was recorded)
     dune exec bench/main.exe -- --bench-scale --jobs 4
       (windowed scheduler on the generated 127-qubit heavy-hex
        device, 1000+-gate supremacy circuit; writes BENCH_scale.json,
        exits 1 unless the windowed rung serves it inside the wall
        bound with jobs-identical schedules and the windowed objective
        stays within the documented factor of exact on <= 20-qubit
        control slices; --smoke shrinks the circuit and skips the
        wall gate) *)

let experiments =
  [ "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8"; "fig9"; "fig10"; "tab1"; "scale"; "ablation" ]

let () =
  let args = Array.to_list Sys.argv in
  if List.mem "--list" args then begin
    List.iter print_endline experiments;
    exit 0
  end;
  if List.mem "--bench-exec" args then begin
    (* wall-clock executor throughput only; writes BENCH_exec.json *)
    Microbench.bench_exec_json ();
    exit 0
  end;
  if
    List.mem "--soak" args || List.mem "--serve-bench" args
    || List.mem "--chaos-bench" args || List.mem "--chaos-client" args
    || List.mem "--bench-sched" args || List.mem "--bench-scale" args
    || List.mem "--drift-bench" args || List.mem "--drift-drill" args
    || List.mem "--mitig-bench" args || List.mem "--fleet-bench" args
    || List.mem "--fleet-drill" args
  then begin
    let int_flag name default =
      let rec find = function
        | flag :: v :: _ when flag = name -> (
          match int_of_string_opt v with
          | Some n -> n
          | None ->
            Printf.eprintf "%s expects an integer, got %s\n" name v;
            exit 2)
        | _ :: rest -> find rest
        | [] -> default
      in
      find args
    in
    let str_flag name default =
      let rec find = function
        | flag :: v :: _ when flag = name -> v
        | _ :: rest -> find rest
        | [] -> default
      in
      find args
    in
    if List.mem "--fleet-bench" args then
      Exp_fleet.run
        ~smoke:(List.mem "--smoke" args)
        ~jobs:(int_flag "--jobs" 2)
        ~dir:(str_flag "--fleet-dir" "fleet-scratch")
        ~out:(str_flag "--out" "BENCH_fleet.json")
    else if List.mem "--fleet-drill" args then
      Exp_fleet.drill
        ~socket:(str_flag "--socket" "qcx-serve.sock")
        ~shards:(int_flag "--shards" 3)
        ~timeout:(float_of_int (int_flag "--timeout" 30))
    else if List.mem "--mitig-bench" args then
      Exp_mitig.run
        ~smoke:(List.mem "--smoke" args)
        ~jobs:(int_flag "--jobs" 4)
        ~seed:(int_flag "--seed" 7)
        ~trials:(int_flag "--trials" 0)
        ~out:(str_flag "--out" "BENCH_mitig.json")
    else if List.mem "--drift-bench" args then
      Exp_drift.run
        ~days:(int_flag "--days" 20)
        ~seed:(int_flag "--seed" 7)
        ~dir:(str_flag "--drift-dir" "drift-scratch")
        ~out:(str_flag "--out" "BENCH_drift.json")
        ~smoke:(List.mem "--smoke" args)
    else if List.mem "--drift-drill" args then
      Exp_drift.drill
        ~socket:(str_flag "--socket" "qcx-serve.sock")
        ~device_name:(str_flag "--device" "example6q")
    else if List.mem "--bench-scale" args then
      Exp_scale.bench
        ~smoke:(List.mem "--smoke" args)
        ~jobs:(int_flag "--jobs" 4)
        ~out:(str_flag "--out" "BENCH_scale.json")
    else if List.mem "--bench-sched" args then
      Exp_sched.run
        ~smoke:(List.mem "--smoke" args)
        ~jobs:(int_flag "--jobs" 4)
        ~repeats:(int_flag "--repeats" 5)
        ~out:(str_flag "--out" "BENCH_sched.json")
    else if List.mem "--chaos-bench" args then
      Exp_chaos.run
        ~seeds:(int_flag "--seeds" 20)
        ~requests:(int_flag "--requests" 60)
        ~jobs:(int_flag "--jobs" 2)
        ~dir:(str_flag "--chaos-dir" "chaos-scratch")
        ~out:(str_flag "--out" "BENCH_chaos.json")
    else if List.mem "--chaos-client" args then
      Exp_chaos.client
        ~socket:(str_flag "--socket" "qcx-serve.sock")
        ~mode:(str_flag "--mode" "record")
        ~file:(str_flag "--file" "chaos-expected.json")
        ~requests:(int_flag "--requests" 24)
        ~seed:(int_flag "--seed" 7)
        ~min_cached:(int_flag "--min-cached" 0)
    else if List.mem "--serve-bench" args then
      Exp_serve.run
        ~seed:(int_flag "--seed" 7)
        ~requests:(int_flag "--requests" 160)
        ~jobs:(int_flag "--jobs" 4)
        ~smoke:(List.mem "--smoke" args)
        ~out:(str_flag "--out" "BENCH_serve.json")
    else
      Exp_soak.run
        ~days:(int_flag "--days" 10)
        ~seed:(int_flag "--seed" 7)
        ~jobs:(int_flag "--jobs" 1)
        ~device_name:(str_flag "--soak-device" "example6q")
        ~faults:(not (List.mem "--no-faults" args))
        ~dir:(str_flag "--soak-dir" "soak-snapshots")
        ~out:(str_flag "--out" "SOAK.json");
    exit 0
  end;
  let quality = if List.mem "--full" args then Ctx.Full else Ctx.Quick in
  let only =
    let rec find = function
      | "--only" :: id :: _ -> Some id
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  let want id = match only with None -> true | Some o -> o = id in
  (match only with
  | Some id when not (List.mem id experiments) ->
    Printf.eprintf "unknown experiment %s; use --list\n" id;
    exit 1
  | _ -> ());
  Printf.printf
    "Crosstalk mitigation on NISQ computers (ASPLOS 2020) - reproduction harness\n";
  Printf.printf "quality: %s\n" (match quality with Ctx.Quick -> "quick" | Ctx.Full -> "full");
  let t0 = Sys.time () in
  Printf.printf "characterizing the three devices (1-hop + bin-packing policy)...\n%!";
  let ctx = Ctx.create quality in
  Printf.printf "characterization done in %.1f s (CPU)\n%!" (Sys.time () -. t0);
  if want "fig3" then Exp_fig3.run ctx;
  if want "fig4" then Exp_fig4.run ctx;
  let fig5_results = if want "fig5" then Some (Exp_fig5.run ctx) else None in
  if want "fig6" then Exp_fig6.run ctx;
  if want "fig7" then Exp_fig7.run ctx fig5_results;
  if want "fig8" then Exp_fig8.run ctx;
  if want "fig9" then Exp_fig9.run ctx;
  if want "fig10" then Exp_fig10.run ctx;
  if want "tab1" then Exp_tab1.run ctx;
  if want "scale" then Exp_scale.run ctx;
  if want "ablation" then Exp_ablation.run ctx;
  if only = None && not (List.mem "--no-bechamel" args) then Microbench.run ();
  Printf.printf "\ntotal harness CPU time: %.1f s\n" (Sys.time () -. t0)
