(* Fleet bench (DESIGN.md section 14): the sharded serve tier under a
   kill-a-shard chaos drill, gated on the four fleet guarantees:

     - determinism: responses are bit-identical (over id/status/key/
       schedule) at every shard count x jobs combination;
     - durability: zero acknowledged schedules lost across any
       single-shard kill -9 — every pre-kill ok response is served
       again, bit-identically, after failover and rebuild;
     - rebuild fidelity: with clean replication (no injected faults),
       the peer rebuild is byte-identical to the state the lost
       shard's own snapshot + journal would have recovered to;
     - availability: >= 0.99 of requests answer ok across the whole
       run, including the failover window.

   Fault seeds additionally partition / slow the replica streams (lag
   must become visible), and tear the surviving replica's tail before
   the rebuild (the valid-prefix replay must still rejoin; the lost
   suffix is recompiled bit-identically on demand).

   `drill` is the out-of-process counterpart used by ci.sh: poll the
   router's aggregated health until the whole fleet is live with zero
   replication lag, and assert the failover actually happened. *)

module Service = Core.Service
module Wire = Core.Wire
module Registry = Core.Registry
module Breaker = Core.Breaker
module Json = Core.Json
module Faults = Core.Service_faults
module Fleet = Core.Fleet
module Shard = Core.Shard
module Replica = Core.Replica
module Router = Core.Router

let make_registry () =
  let device = Core.Presets.example_6q () in
  let registry = Registry.create () in
  ignore
    (Registry.add_static registry ~id:"example6q" ~device
       ~xtalk:(Core.Device.ground_truth device));
  registry

let service_config jobs =
  {
    Service.jobs;
    queue_bound = 16;
    (* Capacity far above the workload's unique-key count: the rebuild
       identity argument needs an eviction-free cache (evictions are
       driven by LRU recency, which is deliberately not replicated). *)
    cache_capacity = 256;
    max_compile_seconds = Some 5.0;
    deadline_grace = 4.0;
    breaker = Breaker.default_config;
    checkpoint_every = 8;
  }

(* Compile-only workload: 12 circuit templates x 8 omega values = 24
   distinct cache keys cycled with repeats, so every shard sees both
   cold compiles and hits. *)
let fleet_request device i =
  let params =
    { Wire.default_params with Wire.omega = 0.3 +. (0.01 *. float_of_int (i mod 8)) }
  in
  Wire.Compile
    {
      id = Printf.sprintf "f%d" i;
      device = "example6q";
      circuit = Exp_chaos.build_circuit device (i mod 12);
      params;
    }

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* The determinism projection: id/status/key/schedule — everything a
   client acts on.  Wall-clock stats and the cached flag legitimately
   vary across shard counts and jobs. *)
let digest_of_lines lines =
  let buf = Buffer.create 4096 in
  List.iter
    (fun line ->
      (match Json.of_string line with
      | Error _ -> Buffer.add_string buf "unparsed"
      | Ok doc ->
        let f k = Result.value ~default:"" (Json.find_str k doc) in
        let sched =
          match Json.member "schedule" doc with
          | Some s -> Json.to_string ~indent:false s
          | None -> ""
        in
        Buffer.add_string buf (f "id" ^ "|" ^ f "status" ^ "|" ^ f "key" ^ "|" ^ sched));
      Buffer.add_char buf '\n')
    lines;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let drive fleet lines = List.concat_map (fun b -> fst (Fleet.handle_lines fleet b)) (Exp_chaos.batches 6 lines)

(* ---- phase A: determinism matrix ---- *)

let run_matrix ~dir ~requests ~shard_counts ~jobs_list =
  let device = Core.Presets.example_6q () in
  let lines =
    List.init requests (fun i -> Exp_chaos.encode (fleet_request device i))
  in
  let cells =
    List.concat_map
      (fun nshards ->
        List.map
          (fun jobs ->
            let root = Filename.concat dir (Printf.sprintf "matrix-s%d-j%d" nshards jobs) in
            rm_rf root;
            match
              Fleet.create ~service_config:(service_config jobs) ~root ~nshards
                ~make_registry ()
            with
            | Error e ->
              Printf.eprintf "fleet matrix: boot failed (%d shards): %s\n" nshards e;
              exit 1
            | Ok fleet ->
              let out = drive fleet lines in
              Fleet.close fleet;
              rm_rf root;
              let d = digest_of_lines out in
              Printf.printf "  matrix: %d shard(s) x jobs %d -> %s\n%!" nshards jobs d;
              (nshards, jobs, d))
          jobs_list)
      shard_counts
  in
  cells

(* ---- phases B/C: one seeded kill drill ---- *)

type kill_report = {
  seed : int;
  faulty : bool;
  victim : int;
  kill_at : int;
  acked_pre_kill : int;
  ok_responses : int;
  expected : int;
  failovers : int;
  retries : int;
  unavailable : int;
  max_lag : int;
  rebuilt_entries : int;
  torn_replica : bool;
  rebuild_identical : bool option;  (* None for fault seeds (tail may be torn) *)
  lost : int;
}

let run_kill_seed ~seed ~requests ~jobs ~dir ~faulty =
  let device = Core.Presets.example_6q () in
  let nshards = 3 in
  let root =
    Filename.concat dir (Printf.sprintf "fleet-%s-%d" (if faulty then "fault" else "clean") seed)
  in
  rm_rf root;
  let fault_config =
    if faulty then
      {
        Faults.none with
        Faults.replica_partition = 0.25;
        replica_slow = 0.15;
        slow_ack_seconds = 0.005;
        replica_tear = 1.0;
      }
    else Faults.none
  in
  let plan = Faults.create ~config:fault_config ~seed () in
  let fleet =
    match Fleet.create ~service_config:(service_config jobs) ~root ~nshards ~make_registry () with
    | Ok f -> f
    | Error e ->
      Printf.eprintf "fleet seed %d: boot failed: %s\n" seed e;
      exit 1
  in
  if faulty then
    for k = 0 to nshards - 1 do
      match Fleet.shard fleet k with
      | Some sh ->
        Replica.set_fault (Shard.replica sh)
          (Some (fun ~nth -> Faults.replica_fault plan ~shard:k ~nth))
      | None -> ()
    done;
  let kill_at, victim = Faults.shard_kill plan ~requests ~shards:nshards in
  let reqs = List.init requests (fun i -> fleet_request device i) in
  let line_of = Hashtbl.create requests in
  let lines =
    List.map
      (fun r ->
        let line = Exp_chaos.encode r in
        Hashtbl.replace line_of (Wire.request_id r) line;
        line)
      reqs
  in
  let acked = Hashtbl.create 64 in
  let reference = ref "" in
  let killed = ref false in
  let sent = ref 0 in
  let ok = ref 0 in
  let max_lag = ref 0 in
  let sample_lag () =
    for k = 0 to nshards - 1 do
      match Fleet.shard fleet k with
      | Some sh -> max_lag := max !max_lag (fst (Replica.lag (Shard.replica sh)))
      | None -> ()
    done
  in
  List.iter
    (fun batch ->
      if (not !killed) && !sent >= kill_at then begin
        (* kill -9 between batches: fds closed unflushed, snapshot and
           journal deleted; only the peer replica survives.  The
           reference (what the shard's own files would have recovered
           to) is captured first. *)
        (match Fleet.kill fleet ~shard:victim with
        | Ok r -> reference := r
        | Error e ->
          Printf.eprintf "fleet seed %d: kill failed: %s\n" seed e;
          exit 1);
        killed := true
      end;
      let out, _stop = Fleet.handle_lines fleet batch in
      List.iter
        (fun line ->
          match Json.of_string line with
          | Error _ -> ()
          | Ok doc ->
            let status = Result.value ~default:"" (Json.find_str "status" doc) in
            if status = "ok" then begin
              incr ok;
              if not !killed then
                match (Json.find_str "id" doc, Json.find_str "key" doc) with
                | Ok id, Ok key ->
                  let sched =
                    match Json.member "schedule" doc with
                    | Some s -> Json.to_string ~indent:false s
                    | None -> ""
                  in
                  Hashtbl.replace acked id (key, sched)
                | _ -> ()
            end)
        out;
      sent := !sent + List.length batch;
      sample_lag ())
    (Exp_chaos.batches 6 lines);
  if not !killed then begin
    match Fleet.kill fleet ~shard:victim with
    | Ok r ->
      reference := r;
      killed := true
    | Error e ->
      Printf.eprintf "fleet seed %d: kill failed: %s\n" seed e;
      exit 1
  end;
  (* Fault seeds also tear the surviving replica's tail — the rebuild
     must use the valid prefix instead of refusing or corrupting. *)
  let torn_replica =
    if not faulty then false
    else begin
      let rpath = Shard.replica_path ~root ~nshards victim in
      match Unix.stat rpath with
      | { Unix.st_size = len; _ } when len > 1 -> (
        match Faults.replica_tear plan ~len with
        | Some off ->
          let fd = Unix.openfile rpath [ Unix.O_WRONLY ] 0o644 in
          Unix.ftruncate fd off;
          Unix.close fd;
          true
        | None -> false)
      | _ | (exception Unix.Unix_error _) -> false
    end
  in
  let boot =
    match Fleet.restart fleet ~shard:victim with
    | Ok b -> b
    | Error e ->
      Printf.eprintf "fleet seed %d: restart failed: %s\n" seed e;
      exit 1
  in
  let rebuilt =
    match Fleet.canonical_state fleet ~shard:victim with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "fleet seed %d: no rebuilt state: %s\n" seed e;
      exit 1
  in
  let rebuild_identical = if faulty then None else Some (rebuilt = !reference) in
  (* Durability: every acknowledged pre-kill schedule must be served
     again — bit-identically — by the healed fleet.  (Entries a torn
     or lagging replica lost are recompiled; determinism makes the
     recompile identical, so they are not "lost" to the client.) *)
  let replay_lines =
    Hashtbl.fold (fun id _ acc -> (id, Hashtbl.find line_of id) :: acc) acked []
  in
  let lost = ref 0 in
  (* batched like the live drive — one giant batch would trip a
     shard's own admission control, which is not what this probes *)
  let replay_out = drive fleet (List.map snd replay_lines) in
  let replay_map = Exp_chaos.response_map replay_out in
  Hashtbl.iter
    (fun id (key, sched) ->
      match Hashtbl.find_opt replay_map id with
      | Some ("ok", doc) ->
        let got_key = Result.value ~default:"" (Json.find_str "key" doc) in
        let got_sched =
          match Json.member "schedule" doc with
          | Some s -> Json.to_string ~indent:false s
          | None -> ""
        in
        if got_key <> key || got_sched <> sched then begin
          incr lost;
          Printf.eprintf "fleet seed %d: %s replayed with different schedule\n" seed id
        end
      | Some (status, _) ->
        incr lost;
        Printf.eprintf "fleet seed %d: %s answered %s after heal\n" seed id status
      | None ->
        incr lost;
        Printf.eprintf "fleet seed %d: no response for %s after heal\n" seed id)
    acked;
  let router_doc =
    match Fleet.handle_lines fleet [ {|{"op":"stats","id":"wrap"}|} ] with
    | [ line ], _ -> Json.of_string line
    | _ -> Error "no stats"
  in
  let stat name =
    match router_doc with
    | Ok doc -> (
      match
        Option.bind (Json.member "stats" doc) (fun s ->
            Option.bind (Json.member "router" s) (Json.member name))
      with
      | Some (Json.Number x) -> int_of_float x
      | _ -> 0)
    | Error _ -> 0
  in
  let report =
    {
      seed;
      faulty;
      victim;
      kill_at;
      acked_pre_kill = Hashtbl.length acked;
      ok_responses = !ok;
      expected = requests;
      failovers = stat "failovers";
      retries = stat "retries";
      unavailable = stat "unavailable";
      max_lag = !max_lag;
      rebuilt_entries = boot.Shard.rebuilt_from_replica;
      torn_replica;
      rebuild_identical;
      lost = !lost;
    }
  in
  Fleet.close fleet;
  rm_rf root;
  report

let kill_json r =
  Json.Object
    [
      ("seed", Json.Number (float_of_int r.seed));
      ("faulty", Json.Bool r.faulty);
      ("victim", Json.Number (float_of_int r.victim));
      ("kill_after_request", Json.Number (float_of_int r.kill_at));
      ("acked_pre_kill", Json.Number (float_of_int r.acked_pre_kill));
      ("ok_responses", Json.Number (float_of_int r.ok_responses));
      ("expected", Json.Number (float_of_int r.expected));
      ("failovers", Json.Number (float_of_int r.failovers));
      ("retries", Json.Number (float_of_int r.retries));
      ("unavailable", Json.Number (float_of_int r.unavailable));
      ("max_replication_lag", Json.Number (float_of_int r.max_lag));
      ("rebuilt_from_replica", Json.Number (float_of_int r.rebuilt_entries));
      ("torn_replica", Json.Bool r.torn_replica);
      ( "rebuild_identical",
        match r.rebuild_identical with None -> Json.Null | Some b -> Json.Bool b );
      ("lost_acknowledged", Json.Number (float_of_int r.lost));
    ]

let run ~smoke ~jobs ~dir ~out =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let requests = if smoke then 18 else 48 in
  let shard_counts = if smoke then [ 1; 2 ] else [ 1; 2; 3 ] in
  let jobs_list = if smoke then [ 1; 2 ] else [ 1; 2; 4 ] in
  let clean_seeds = if smoke then 2 else 5 in
  let fault_seeds = if smoke then 2 else 5 in
  ignore jobs;
  Printf.printf "fleet bench: matrix %d requests over shards x jobs, then %d clean + %d fault kill seeds\n%!"
    requests clean_seeds fault_seeds;
  let cells = run_matrix ~dir ~requests ~shard_counts ~jobs_list in
  let digests = List.sort_uniq compare (List.map (fun (_, _, d) -> d) cells) in
  let matrix_identical = List.length digests = 1 in
  let kill_requests = if smoke then 24 else 60 in
  let clean_reports =
    List.init clean_seeds (fun k ->
        let r = run_kill_seed ~seed:(7000 + k) ~requests:kill_requests ~jobs:2 ~dir ~faulty:false in
        Printf.printf
          "  clean seed %d: victim %d after %d, acked %d, ok %d/%d, failovers %d, rebuilt %d, identical %b, lost %d\n%!"
          r.seed r.victim r.kill_at r.acked_pre_kill r.ok_responses r.expected r.failovers
          r.rebuilt_entries
          (r.rebuild_identical = Some true)
          r.lost;
        r)
  in
  let fault_reports =
    List.init fault_seeds (fun k ->
          let r = run_kill_seed ~seed:(7100 + k) ~requests:kill_requests ~jobs:2 ~dir ~faulty:true in
          Printf.printf
            "  fault seed %d: victim %d after %d, acked %d, ok %d/%d, max lag %d, torn %b, rebuilt %d, lost %d\n%!"
            r.seed r.victim r.kill_at r.acked_pre_kill r.ok_responses r.expected r.max_lag
            r.torn_replica r.rebuilt_entries r.lost;
          r)
  in
  let reports = clean_reports @ fault_reports in
  let total f = List.fold_left (fun acc r -> acc + f r) 0 reports in
  let lost = total (fun r -> r.lost) in
  let rebuild_ok =
    List.for_all (fun r -> r.rebuild_identical <> Some false) reports
  in
  let availability =
    let ok = total (fun r -> r.ok_responses) and exp_ = total (fun r -> r.expected) in
    float_of_int ok /. float_of_int (max 1 exp_)
  in
  let failovers = total (fun r -> r.failovers) in
  let max_lag = List.fold_left (fun m r -> max m r.max_lag) 0 reports in
  let torn_replicas = List.length (List.filter (fun r -> r.torn_replica) reports) in
  let gates =
    [
      ("matrix_identical", matrix_identical);
      ("zero_acknowledged_lost", lost = 0);
      ("rebuild_identical", rebuild_ok);
      ("availability_ge_0_99", availability >= 0.99);
      ("failover_exercised", failovers >= 1);
    ]
  in
  let doc =
    Json.Object
      [
        ("smoke", Json.Bool smoke);
        ("requests_per_matrix_cell", Json.Number (float_of_int requests));
        ("kill_requests_per_seed", Json.Number (float_of_int kill_requests));
        ( "matrix",
          Json.Array
            (List.map
               (fun (n, j, d) ->
                 Json.Object
                   [
                     ("shards", Json.Number (float_of_int n));
                     ("jobs", Json.Number (float_of_int j));
                     ("digest", Json.String d);
                   ])
               cells) );
        ("matrix_digests", Json.Number (float_of_int (List.length digests)));
        ("availability", Json.Number availability);
        ("failovers", Json.Number (float_of_int failovers));
        ("max_replication_lag", Json.Number (float_of_int max_lag));
        ("torn_replica_seeds", Json.Number (float_of_int torn_replicas));
        ("lost_acknowledged", Json.Number (float_of_int lost));
        ("gates", Json.Object (List.map (fun (k, v) -> (k, Json.Bool v)) gates));
        ("per_seed", Json.Array (List.map kill_json reports));
      ]
  in
  let oc = open_out out in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf
    "availability %.4f, %d failovers, max lag %d, %d torn replicas, %d lost acked, matrix %s\n"
    availability failovers max_lag torn_replicas lost
    (if matrix_identical then "identical" else "DIVERGED");
  Printf.printf "wrote %s\n" out;
  if List.exists (fun (_, v) -> not v) gates then begin
    Printf.eprintf "fleet bench FAILED:%s\n"
      (String.concat ""
         (List.filter_map (fun (k, v) -> if v then None else Some (" " ^ k)) gates));
    exit 1
  end

(* ---- out-of-process drill assertion (ci.sh) ---- *)

let drill ~socket ~shards ~timeout =
  let deadline = Unix.gettimeofday () +. timeout in
  let check () =
    match Exp_chaos.roundtrip ~socket [ Wire.Health { id = "drill" } ] with
    | [ line ] -> (
      match Json.of_string line with
      | Error _ -> Error "unparseable health"
      | Ok doc -> (
        match Json.member "health" doc with
        | None -> Error "no health payload"
        | Some h ->
          let num obj name =
            match Option.bind obj (Json.member name) with
            | Some (Json.Number x) -> Some x
            | _ -> None
          in
          let router = Json.member "router" h in
          let failovers = Option.value ~default:0.0 (num router "failovers") in
          let last_failover =
            match Option.bind router (Json.member "last_failover_at") with
            | Some (Json.Number _) -> true
            | _ -> false
          in
          let shard_rows =
            match Json.member "shards" h with Some (Json.Array rows) -> rows | _ -> []
          in
          let live_ok row =
            let reachable =
              match Json.member "reachable" row with Some (Json.Bool b) -> b | _ -> false
            in
            let state = Result.value ~default:"" (Json.find_str "state" row) in
            let lag =
              num
                (Option.bind (Json.member "health" row) (fun hh ->
                     Option.bind (Json.member "shard" hh) (Json.member "replica")))
                "lag_entries"
            in
            reachable && state = "live" && lag = Some 0.0
          in
          if List.length shard_rows <> shards then
            Error (Printf.sprintf "expected %d shards, saw %d" shards (List.length shard_rows))
          else if not (List.for_all live_ok shard_rows) then Error "a shard is not live/lag-free"
          else if not (failovers >= 1.0 && last_failover) then
            Error "no failover was recorded"
          else Ok ()))
    | _ -> Error "no health response"
  in
  let rec poll last_err =
    if Unix.gettimeofday () > deadline then begin
      Printf.eprintf "fleet drill: FAILED: %s\n" last_err;
      exit 1
    end
    else
      match check () with
      | Ok () ->
        Printf.printf
          "fleet drill: %d shards live, replication lag 0, failover recorded\n" shards;
        exit 0
      | Error e ->
        Unix.sleepf 0.25;
        poll e
  in
  poll "timed out"
