(* Integration tests: the full pipeline across module boundaries,
   including quantitative agreement between characterization and
   ground truth, deployment through barriers, drift workflows, and the
   paper's Figure 1 example device. *)

module Rng = Core.Rng
module Circuit = Core.Circuit
module Schedule = Core.Schedule
module Device = Core.Device
module Presets = Core.Presets
module Crosstalk = Core.Crosstalk
module Policy = Core.Policy

let characterized = Hashtbl.create 3

(* Characterization is expensive; memoize per device. *)
let xtalk_for device =
  match Hashtbl.find_opt characterized (Device.name device) with
  | Some x -> x
  | None ->
    let rng = Rng.create (Hashtbl.hash (Device.name device, "test-integration")) in
    let plan = Policy.plan ~rng device Policy.One_hop_binpacked in
    let outcome = Policy.characterize ~rng device plan in
    Hashtbl.replace characterized (Device.name device) outcome.Policy.xtalk;
    outcome.Policy.xtalk

let characterization_matches_truth () =
  (* The characterized flag set must equal the ground-truth set on all
     three devices (the calibrated outcome this repository's presets
     are tuned for). *)
  List.iter
    (fun device ->
      let xtalk = xtalk_for device in
      let flagged =
        List.sort compare
          (Crosstalk.high_crosstalk_pairs xtalk (Device.calibration device) ~threshold:3.0)
      in
      let truth = List.sort compare (Device.true_high_crosstalk_pairs device ~threshold:3.0) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: flag set equals ground truth" (Device.name device))
        true (flagged = truth))
    (Presets.all ())

let characterized_rates_ordered () =
  (* For every ground-truth pair, the characterized conditional rate
     must exceed the calibration independent rate by a clear margin. *)
  let device = Presets.poughkeepsie () in
  let xtalk = xtalk_for device in
  let cal = Device.calibration device in
  List.iter
    (fun (e1, e2) ->
      let cond = Crosstalk.conditional_or_independent xtalk cal ~target:e1 ~spectator:e2 in
      let ind = (Core.Calibration.gate cal e1).Core.Calibration.cnot_error in
      Alcotest.(check bool) "conditional over 2x independent" true (cond > 2.0 *. ind))
    (Device.true_high_crosstalk_pairs device ~threshold:3.0)

let scheduler_decisions_from_characterized_data () =
  (* XtalkSched driven by *characterized* data must serialize the same
     flagship overlap that ground truth implies, and improve the oracle
     error on the Fig. 6 path. *)
  let device = Presets.poughkeepsie () in
  let xtalk = xtalk_for device in
  let bench = Core.Swap_circuits.build device ~src:0 ~dst:13 in
  let circuit = Circuit.measure_all bench.Core.Swap_circuits.circuit in
  let xs, stats = Core.Xtalk_sched.schedule ~omega:0.5 ~device ~xtalk circuit in
  Alcotest.(check bool) "found interfering pairs" true (stats.Core.Xtalk_sched.pairs > 0);
  let par = Core.Par_sched.schedule device circuit in
  let err s = (Core.Evaluate.oracle device s).Core.Evaluate.error in
  Alcotest.(check bool) "beats ParSched with measured data" true (err xs < err par)

let barrier_deployment_equivalence () =
  (* Scheduling through barrier deployment (solve once, replay with
     orderings) must give the same oracle error as the direct solver
     schedule. *)
  let device = Presets.poughkeepsie () in
  let xtalk = Device.ground_truth device in
  let bench = Core.Swap_circuits.build device ~src:5 ~dst:12 in
  let circuit = Circuit.measure_all bench.Core.Swap_circuits.circuit in
  let direct, _ = Core.Xtalk_sched.schedule ~omega:0.5 ~device ~xtalk circuit in
  let dag = Core.Dag.of_circuit (Schedule.circuit direct) in
  let instances = Core.Encoding.interfering_instances ~device ~xtalk ~threshold:3.0 ~dag in
  let serialized = Core.Barriers.serialized_pairs direct ~pairs:instances in
  let deployed = Core.Par_sched.schedule_with_orderings device circuit ~extra:serialized in
  let err s = (Core.Evaluate.oracle device s).Core.Evaluate.error in
  Alcotest.(check bool) "deployed within 10% of direct" true
    (Float.abs (err deployed -. err direct) < 0.1 *. err direct +. 0.02)

let drift_workflow_refresh () =
  (* Opt 3 workflow across days: re-measuring only the flagged pairs on
     a drifted device still tracks its (drifted) conditional rates. *)
  let device = Presets.poughkeepsie () in
  let rng = Rng.create 77 in
  let flagged = Device.true_high_crosstalk_pairs device ~threshold:3.0 in
  let day3 = Core.Drift.on_day device ~day:3 in
  let plan = Policy.plan ~rng day3 (Policy.High_crosstalk_only flagged) in
  let outcome = Policy.characterize ~rng day3 plan in
  (* every flagged pair got fresh conditional entries, both directions *)
  Alcotest.(check int) "2 measurements per pair" (2 * List.length flagged)
    (List.length outcome.Policy.measurements);
  List.iter
    (fun (e1, e2) ->
      Alcotest.(check bool) "entry present" true
        (Crosstalk.conditional outcome.Policy.xtalk ~target:e1 ~spectator:e2 <> None))
    flagged

let fig1_example_device () =
  (* The paper's 6-qubit Figure 1 machine: CNOT 0,1 | CNOT 2,3 is the
     high-crosstalk pair, qubit 2 has low coherence.  XtalkSched on a
     program exercising both must beat ParSched. *)
  let device = Presets.example_6q () in
  let xtalk = Device.ground_truth device in
  Alcotest.(check int) "one true pair" 1
    (List.length (Device.true_high_crosstalk_pairs device ~threshold:3.0));
  let c = Circuit.create 6 in
  let c = Circuit.h c 0 in
  let c = Circuit.cnot c ~control:0 ~target:1 in
  let c = Circuit.cnot c ~control:2 ~target:3 in
  let c = Circuit.cnot c ~control:1 ~target:2 in
  let c = Circuit.measure_all c in
  let xs, stats = Core.Xtalk_sched.schedule ~omega:0.5 ~device ~xtalk c in
  Alcotest.(check int) "pair found" 1 stats.Core.Xtalk_sched.pairs;
  let err s = (Core.Evaluate.oracle device s).Core.Evaluate.error in
  Alcotest.(check bool) "beats ParSched" true
    (err xs <= err (Core.Par_sched.schedule device c) +. 1e-9)

let monte_carlo_agrees_with_oracle_ordering () =
  (* The analytic oracle and a Monte-Carlo hidden-shift run must agree
     on which scheduler is better. *)
  let device = Presets.poughkeepsie () in
  let xtalk = Device.ground_truth device in
  let hs =
    Core.Hidden_shift.build device ~region:[ 15; 10; 11; 12 ]
      ~shift:[ true; false; true; false ] ~redundancy:1
  in
  let rng = Rng.create 78 in
  let run sched =
    let counts = Core.Exec.run device sched ~rng ~trials:4096 ~backend:Core.Exec.Stabilizer in
    Core.Hidden_shift.error_rate hs
      ~counts_get:(Core.Exec.counts_get counts)
      ~total:(Core.Exec.counts_total counts)
  in
  let par = Core.Par_sched.schedule device hs.Core.Hidden_shift.circuit in
  let xs, _ = Core.Xtalk_sched.schedule ~omega:0.5 ~device ~xtalk hs.Core.Hidden_shift.circuit in
  let mc_par = run par and mc_xs = run xs in
  let or_par = (Core.Evaluate.oracle device par).Core.Evaluate.error in
  let or_xs = (Core.Evaluate.oracle device xs).Core.Evaluate.error in
  Alcotest.(check bool) "oracle prefers xtalk" true (or_xs < or_par);
  Alcotest.(check bool) "monte carlo agrees" true (mc_xs < mc_par)

let deterministic_end_to_end () =
  (* The same seed must give bit-identical counts. *)
  let device = Presets.poughkeepsie () in
  let bench = Core.Swap_circuits.build device ~src:5 ~dst:12 in
  let circuit = Circuit.measure_all bench.Core.Swap_circuits.circuit in
  let sched = Core.Par_sched.schedule device circuit in
  let run () =
    let rng = Rng.create 79 in
    Core.Exec.counts_bindings (Core.Exec.run device sched ~rng ~trials:256 ~backend:Core.Exec.Stabilizer)
  in
  Alcotest.(check bool) "identical counts" true (run () = run ())

let suite =
  [
    ( "integration",
      [
        Alcotest.test_case "characterization matches truth" `Slow characterization_matches_truth;
        Alcotest.test_case "characterized rates ordered" `Slow characterized_rates_ordered;
        Alcotest.test_case "scheduler uses measured data" `Slow
          scheduler_decisions_from_characterized_data;
        Alcotest.test_case "barrier deployment equivalence" `Quick barrier_deployment_equivalence;
        Alcotest.test_case "drift + refresh workflow" `Slow drift_workflow_refresh;
        Alcotest.test_case "figure 1 example device" `Quick fig1_example_device;
        Alcotest.test_case "monte carlo agrees with oracle" `Slow
          monte_carlo_agrees_with_oracle_ordering;
        Alcotest.test_case "deterministic end to end" `Quick deterministic_end_to_end;
      ] );
  ]
