(* Tests for qcx_metrics: readout mitigation, cross entropy, and
   Bell-state tomography. *)

module Readout = Core.Readout_mitigation
module Cross_entropy = Core.Cross_entropy
module Tomography = Core.Tomography
module Rng = Core.Rng

(* ---- Readout mitigation ---- *)

let mitigation_identity_when_clean () =
  let counts = [ ("00", 600); ("11", 400) ] in
  let corrected = Readout.mitigate ~flips:[ 0.0; 0.0 ] ~counts in
  Alcotest.(check (float 1e-9)) "p00" 0.6 (List.assoc "00" corrected);
  Alcotest.(check (float 1e-9)) "p11" 0.4 (List.assoc "11" corrected);
  Alcotest.(check (float 1e-9)) "p01" 0.0 (List.assoc "01" corrected)

let mitigation_inverts_confusion () =
  (* Apply the confusion analytically to a known distribution, then
     mitigate: must recover the original. *)
  let flips = [ 0.1; 0.05 ] in
  let truth = [ ("00", 0.5); ("01", 0.2); ("10", 0.0); ("11", 0.3) ] in
  let strings = [ "00"; "01"; "10"; "11" ] in
  let transition t o =
    List.fold_left ( *. ) 1.0
      (List.mapi
         (fun i f -> if t.[i] = o.[i] then 1.0 -. f else f)
         flips)
  in
  let observed =
    List.map
      (fun o ->
        ( o,
          int_of_float
            (1_000_000.0
            *. List.fold_left (fun acc (t, p) -> acc +. (p *. transition t o)) 0.0 truth) ))
      strings
  in
  let corrected = Readout.mitigate ~flips ~counts:observed in
  List.iter
    (fun (s, p) ->
      Alcotest.(check (float 1e-3)) ("recovered " ^ s) p (List.assoc s corrected))
    truth

let mitigation_normalizes () =
  let corrected = Readout.mitigate ~flips:[ 0.2 ] ~counts:[ ("0", 90); ("1", 10) ] in
  Alcotest.(check (float 1e-9)) "sums to one" 1.0
    (List.fold_left (fun acc (_, p) -> acc +. p) 0.0 corrected)

let mitigation_confusion_matrix () =
  let m = Readout.confusion1 ~flip:0.1 in
  Alcotest.(check (float 1e-12)) "diagonal" 0.9 m.(0).(0);
  Alcotest.(check (float 1e-12)) "off diagonal" 0.1 m.(0).(1)

(* ---- Cross entropy ---- *)

let ce_entropy () =
  Alcotest.(check (float 1e-9)) "uniform 2 bits" (log 4.0)
    (Cross_entropy.entropy [| 0.25; 0.25; 0.25; 0.25 |]);
  Alcotest.(check (float 1e-9)) "deterministic" 0.0 (Cross_entropy.entropy [| 1.0; 0.0 |])

let ce_perfect_measurement () =
  let ideal = [| 0.5; 0.25; 0.125; 0.125 |] in
  let measured = [ ("00", 0.5); ("10", 0.25); ("01", 0.125); ("11", 0.125) ] in
  (* leftmost char = lowest qubit = bit 0: "10" means bit0=1 -> index 1. *)
  let ce = Cross_entropy.against_ideal ~ideal ~measured in
  Alcotest.(check bool) "ce close to entropy" true
    (Float.abs (ce -. Cross_entropy.entropy ideal) < 1e-2)

let ce_noise_increases () =
  let ideal = [| 0.7; 0.1; 0.1; 0.1 |] in
  let sharp = [ ("00", 0.7); ("10", 0.1); ("01", 0.1); ("11", 0.1) ] in
  let flat = [ ("00", 0.25); ("10", 0.25); ("01", 0.25); ("11", 0.25) ] in
  Alcotest.(check bool) "flattening raises ce" true
    (Cross_entropy.against_ideal ~ideal ~measured:flat
    > Cross_entropy.against_ideal ~ideal ~measured:sharp)

let ce_loss () =
  Alcotest.(check (float 1e-12)) "loss" 0.3 (Cross_entropy.loss ~ideal_entropy:1.2 1.5)

let ce_bit_order () =
  (* All weight on index 2 = bit1 set = second char. *)
  let ideal = [| 0.0; 0.0; 1.0; 0.0 |] in
  let measured = [ ("01", 1.0) ] in
  let ce = Cross_entropy.against_ideal ~ideal ~measured in
  Alcotest.(check bool) "matched encoding gives low ce" true (ce < 0.01)

(* ---- Tomography ---- *)

let noiseless_device = Core.Presets.linear 4

let strip_noise device =
  (* zero every error channel but keep durations *)
  let cal = Core.Device.calibration device in
  let cal =
    List.fold_left
      (fun acc q ->
        let qc = Core.Calibration.qubit acc q in
        Core.Calibration.with_qubit acc q
          {
            qc with
            Core.Calibration.t1 = 1e15;
            t2 = 1e15;
            readout_error = 0.0;
            single_qubit_error = 0.0;
          })
      cal
      (List.init (Core.Calibration.nqubits cal) Fun.id)
  in
  let cal =
    List.fold_left
      (fun acc e ->
        let g = Core.Calibration.gate acc e in
        Core.Calibration.with_gate acc e { g with Core.Calibration.cnot_error = 0.0 })
      cal
      (Core.Topology.edges (Core.Device.topology device))
  in
  Core.Device.with_calibration device cal

let tomography_perfect_bell () =
  let device = strip_noise noiseless_device in
  let circuit = Core.Circuit.cnot (Core.Circuit.h (Core.Circuit.create 4) 0) ~control:0 ~target:1 in
  let rng = Rng.create 51 in
  let r =
    Tomography.bell_state device ~rng ~trials_per_basis:256
      ~schedule:(fun c -> Core.Par_sched.schedule device c)
      ~circuit ~pair:(0, 1)
  in
  Alcotest.(check bool) (Printf.sprintf "error %.4f tiny" r.Tomography.error) true
    (r.Tomography.error < 0.03)

let tomography_not_bell () =
  (* |00> is not a Bell state: <ZZ> = 1, <XX> = <YY> = 0, so the
     fidelity formula gives 1/2 -> error ~0.5. *)
  let device = strip_noise noiseless_device in
  let circuit = Core.Circuit.create 4 in
  let circuit = Core.Circuit.h (Core.Circuit.h circuit 0) 0 in
  (* HH = identity, keeps qubits used *)
  let circuit = Core.Circuit.h (Core.Circuit.h circuit 1) 1 in
  let rng = Rng.create 52 in
  let r =
    Tomography.bell_state device ~rng ~trials_per_basis:256
      ~schedule:(fun c -> Core.Par_sched.schedule device c)
      ~circuit ~pair:(0, 1)
  in
  Alcotest.(check bool) (Printf.sprintf "error %.3f near 0.5" r.Tomography.error) true
    (Float.abs (r.Tomography.error -. 0.5) < 0.05)

let tomography_noise_degrades () =
  let circuit = Core.Circuit.cnot (Core.Circuit.h (Core.Circuit.create 4) 0) ~control:0 ~target:1 in
  let rng = Rng.create 53 in
  let noisy = noiseless_device in
  let r =
    Tomography.bell_state noisy ~rng ~trials_per_basis:256
      ~schedule:(fun c -> Core.Par_sched.schedule noisy c)
      ~circuit ~pair:(0, 1)
  in
  let clean_device = strip_noise noiseless_device in
  let r0 =
    Tomography.bell_state clean_device ~rng ~trials_per_basis:256
      ~schedule:(fun c -> Core.Par_sched.schedule clean_device c)
      ~circuit ~pair:(0, 1)
  in
  Alcotest.(check bool) "noise raises error" true (r.Tomography.error > r0.Tomography.error)

let tomography_fidelity_formula () =
  let e = [ (('X', 'X'), 1.0); (('Y', 'Y'), -1.0); (('Z', 'Z'), 1.0) ] in
  Alcotest.(check (float 1e-12)) "perfect bell" 1.0 (Tomography.fidelity_phi_plus e);
  Alcotest.(check (float 1e-12)) "maximally mixed" 0.25 (Tomography.fidelity_phi_plus [])

let suite =
  [
    ( "metrics.readout",
      [
        Alcotest.test_case "identity when clean" `Quick mitigation_identity_when_clean;
        Alcotest.test_case "inverts confusion" `Quick mitigation_inverts_confusion;
        Alcotest.test_case "normalizes" `Quick mitigation_normalizes;
        Alcotest.test_case "confusion matrix" `Quick mitigation_confusion_matrix;
      ] );
    ( "metrics.cross_entropy",
      [
        Alcotest.test_case "entropy" `Quick ce_entropy;
        Alcotest.test_case "perfect measurement" `Quick ce_perfect_measurement;
        Alcotest.test_case "noise increases" `Quick ce_noise_increases;
        Alcotest.test_case "loss" `Quick ce_loss;
        Alcotest.test_case "bit order" `Quick ce_bit_order;
      ] );
    ( "metrics.tomography",
      [
        Alcotest.test_case "perfect bell" `Quick tomography_perfect_bell;
        Alcotest.test_case "not bell" `Quick tomography_not_bell;
        Alcotest.test_case "noise degrades" `Quick tomography_noise_degrades;
        Alcotest.test_case "fidelity formula" `Quick tomography_fidelity_formula;
      ] );
  ]
