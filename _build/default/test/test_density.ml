(* Tests for the density-matrix simulator, including exact validation
   of the Monte-Carlo noise engine's channels: trajectory averages must
   converge to the closed-form channel evolution. *)

module Density = Core.Density
module State = Core.State
module Gates = Core.Gates
module Cplx = Core.Cplx
module Rng = Core.Rng

let checkf tol = Alcotest.(check (float tol))

let density_initial () =
  let d = Density.create 2 in
  checkf 1e-12 "trace" 1.0 (Density.trace d);
  checkf 1e-12 "purity" 1.0 (Density.purity d);
  checkf 1e-12 "p(00)" 1.0 (Density.probability d 0)

let density_bell () =
  let d = Density.create 2 in
  Density.h d 0;
  Density.cnot d ~control:0 ~target:1;
  checkf 1e-12 "p00" 0.5 (Density.probability d 0);
  checkf 1e-12 "p11" 0.5 (Density.probability d 3);
  checkf 1e-9 "pure" 1.0 (Density.purity d);
  checkf 1e-9 "bell fidelity" 1.0 (Density.fidelity_pure d Gates.bell_phi_plus)

let density_matches_statevector () =
  (* The same random circuit on both simulators gives the same
     probabilities. *)
  let rng = Rng.create 61 in
  for _ = 1 to 20 do
    let d = Density.create 3 and s = State.create 3 in
    for _ = 1 to 12 do
      match Rng.int rng 4 with
      | 0 ->
        let q = Rng.int rng 3 in
        Density.h d q;
        State.h s q
      | 1 ->
        let q = Rng.int rng 3 in
        Density.s d q;
        State.s s q
      | 2 ->
        let q = Rng.int rng 3 in
        let theta = Rng.float rng 3.0 in
        Density.apply_unitary1 d (Gates.ry theta) q;
        State.apply1 s (Gates.ry theta) q
      | _ ->
        let a = Rng.int rng 3 in
        let b = (a + 1 + Rng.int rng 2) mod 3 in
        Density.cnot d ~control:a ~target:b;
        State.cnot s ~control:a ~target:b
    done;
    Array.iteri
      (fun k p -> checkf 1e-9 (Printf.sprintf "p(%d)" k) p (Density.probability d k))
      (State.probabilities s)
  done

let depolarizing_purity () =
  let d = Density.create 1 in
  Density.depolarizing1 d ~p:0.75 0;
  (* full single-qubit depolarizing at p = 3/4 gives the maximally
     mixed state *)
  checkf 1e-9 "maximally mixed" 0.5 (Density.purity d);
  checkf 1e-9 "trace preserved" 1.0 (Density.trace d)

let amplitude_damping_exact () =
  let d = Density.create 1 in
  Density.x d 0;
  (* |1><1| *)
  Density.amplitude_damping d ~gamma:0.3 0;
  checkf 1e-9 "p1 decays to 1-gamma" 0.7 (Density.probability d 1);
  checkf 1e-9 "p0 gains gamma" 0.3 (Density.probability d 0);
  checkf 1e-9 "trace" 1.0 (Density.trace d)

let phase_damping_kills_coherence () =
  let d = Density.create 1 in
  Density.h d 0;
  Density.phase_damping d ~lambda:1.0 0;
  (* coherence gone, populations intact *)
  checkf 1e-9 "p0" 0.5 (Density.probability d 0);
  checkf 1e-9 "purity 1/2" 0.5 (Density.purity d);
  let m = Density.to_mat d in
  checkf 1e-9 "off-diagonal zero" 0.0 (Cplx.abs (Core.Mat.get m 0 1))

let twirl_matches_exact_channels_diagonally () =
  (* For a classical (diagonal) input, the Pauli twirl of amplitude
     damping reproduces the exact population transfer up to the twirl
     approximation: X/Y with probability gamma/4 each flip the
     excited population by gamma/2 total (vs gamma exactly).  Check
     the twirl against its own closed form. *)
  let gamma = 0.2 in
  let d = Density.create 1 in
  Density.x d 0;
  Density.pauli_twirl_idle d ~px:(gamma /. 4.0) ~py:(gamma /. 4.0) ~pz:(gamma /. 2.0) 0;
  checkf 1e-9 "population flip gamma/2" (gamma /. 2.0) (Density.probability d 0)

let monte_carlo_converges_to_channel () =
  (* Average many trajectory statevectors with sampled Pauli insertions
     and compare against the exact depolarizing channel. *)
  let p = 0.3 in
  let rng = Rng.create 62 in
  let trials = 30_000 in
  let acc = Array.make 2 0.0 in
  for _ = 1 to trials do
    let s = State.create 1 in
    State.h s 0;
    (match Core.Channel.sample_depolarizing1 rng ~p with
    | Some pauli -> State.apply_pauli s pauli 0
    | None -> ());
    (* measure in X basis: apply H then read p0 *)
    State.h s 0;
    let probs = State.probabilities s in
    acc.(0) <- acc.(0) +. probs.(0);
    acc.(1) <- acc.(1) +. probs.(1)
  done;
  let mc_p0 = acc.(0) /. float_of_int trials in
  let d = Density.create 1 in
  Density.h d 0;
  Density.depolarizing1 d ~p 0;
  Density.h d 0;
  let exact_p0 = Density.probability d 0 in
  Alcotest.(check bool)
    (Printf.sprintf "MC %.4f vs exact %.4f" mc_p0 exact_p0)
    true
    (Float.abs (mc_p0 -. exact_p0) < 0.01)

let idle_channel_against_density () =
  (* The noise engine's idle twirl parameters, applied exactly, keep
     trace 1 and reduce purity monotonically with duration. *)
  let purity_after duration =
    let c = Core.Channel.idle_channel ~t1:50_000.0 ~t2:30_000.0 ~duration in
    let d = Density.create 1 in
    Density.h d 0;
    Density.pauli_twirl_idle d ~px:c.Core.Channel.px ~py:c.Core.Channel.py
      ~pz:c.Core.Channel.pz 0;
    checkf 1e-9 "trace" 1.0 (Density.trace d);
    Density.purity d
  in
  let p1 = purity_after 100.0 and p2 = purity_after 1_000.0 and p3 = purity_after 10_000.0 in
  Alcotest.(check bool) "purity decreases with idle time" true (p1 > p2 && p2 > p3)

let kraus_completeness_checked () =
  let d = Density.create 1 in
  let k = Core.Mat.scale (Cplx.re 0.5) (Core.Mat.identity 2) in
  Alcotest.(check bool) "incomplete kraus rejected" true
    (try
       Density.apply_kraus1 d [ k ] 0;
       false
     with Invalid_argument _ -> true)

let readout_channel () =
  let d = Density.create 1 in
  Density.bitflip_readout d ~flip:0.1 0;
  checkf 1e-9 "p1 = flip" 0.1 (Density.probability d 1)

let suite =
  [
    ( "density",
      [
        Alcotest.test_case "initial state" `Quick density_initial;
        Alcotest.test_case "bell" `Quick density_bell;
        Alcotest.test_case "matches statevector" `Quick density_matches_statevector;
        Alcotest.test_case "depolarizing purity" `Quick depolarizing_purity;
        Alcotest.test_case "amplitude damping" `Quick amplitude_damping_exact;
        Alcotest.test_case "phase damping" `Quick phase_damping_kills_coherence;
        Alcotest.test_case "twirl closed form" `Quick twirl_matches_exact_channels_diagonally;
        Alcotest.test_case "monte carlo converges" `Slow monte_carlo_converges_to_channel;
        Alcotest.test_case "idle channel purity" `Quick idle_channel_against_density;
        Alcotest.test_case "kraus completeness" `Quick kraus_completeness_checked;
        Alcotest.test_case "readout channel" `Quick readout_channel;
      ] );
  ]
