(* Tests for qcx_benchmarks: SWAP circuits, QAOA, Hidden Shift,
   supremacy-style circuits. *)

module Circuit = Core.Circuit
module Presets = Core.Presets
module Device = Core.Device
module Topology = Core.Topology
module Swap_circuits = Core.Swap_circuits
module Qaoa = Core.Qaoa
module Hidden_shift = Core.Hidden_shift
module Supremacy = Core.Supremacy
module Rng = Core.Rng

let pough = Presets.poughkeepsie ()

(* ---- Swap circuits ---- *)

let swap_structure () =
  let b = Swap_circuits.build pough ~src:0 ~dst:13 in
  Alcotest.(check int) "path length" 5 b.Swap_circuits.path_length;
  Alcotest.(check int) "four swaps" 4 (Swap_circuits.swap_count b);
  Alcotest.(check int) "13 cnots" 13 (Circuit.two_qubit_count b.Swap_circuits.circuit);
  Alcotest.(check (pair int int)) "bell" (10, 11) b.Swap_circuits.bell

let swap_produces_bell_state () =
  (* Noise-free execution must leave exactly |Phi+> on the bell pair. *)
  let b = Swap_circuits.build pough ~src:0 ~dst:13 in
  let state, used = Core.Exec.run_ideal b.Swap_circuits.circuit in
  let ba, bb = b.Swap_circuits.bell in
  let ia = Option.get (List.find_index (fun q -> q = ba) used) in
  let ib = Option.get (List.find_index (fun q -> q = bb) used) in
  let rho = Core.State.reduced_density state [ ia; ib ] in
  let bell = Core.Gates.density_of_state Core.Gates.bell_phi_plus in
  Alcotest.(check bool) "reduced state is |Phi+>" true (Core.Mat.approx_equal ~tol:1e-9 rho bell)

let swap_all_cnots_on_edges () =
  let topo = Device.topology pough in
  List.iter
    (fun (src, dst) ->
      let b = Swap_circuits.build pough ~src ~dst in
      List.iter
        (fun g ->
          if Core.Gate.is_two_qubit g then
            match g.Core.Gate.qubits with
            | [ a; c ] -> Alcotest.(check bool) "on edge" true (Topology.has_edge topo (a, c))
            | _ -> Alcotest.fail "malformed")
        (Circuit.gates b.Swap_circuits.circuit))
    [ (0, 13); (4, 16); (9, 10); (13, 18) ]

let swap_crosstalk_prone_detection () =
  let truth = Device.ground_truth pough in
  let prone = Swap_circuits.build pough ~src:0 ~dst:13 in
  Alcotest.(check bool) "fig6 path prone" true
    (Swap_circuits.is_crosstalk_prone pough ~xtalk:truth prone);
  let quiet = Swap_circuits.build pough ~src:15 ~dst:19 in
  Alcotest.(check bool) "bottom row quiet" false
    (Swap_circuits.is_crosstalk_prone pough ~xtalk:truth quiet)

let swap_crosstalk_free_paths () =
  let truth = Device.ground_truth pough in
  let paths = Swap_circuits.crosstalk_free_paths pough ~xtalk:truth ~length:3 () in
  Alcotest.(check bool) "some quiet length-3 paths" true (List.length paths > 0);
  List.iter
    (fun (a, b) ->
      Alcotest.(check int) "distance 3" 3 (Topology.qubit_distance (Device.topology pough) a b);
      Alcotest.(check bool) "not prone" false
        (Swap_circuits.is_crosstalk_prone pough ~xtalk:truth (Swap_circuits.build pough ~src:a ~dst:b)))
    paths

(* ---- QAOA ---- *)

let qaoa_structure () =
  let rng = Rng.create 41 in
  let q = Qaoa.build pough ~rng ~region:[ 5; 10; 11; 12 ] in
  Alcotest.(check int) "nine cnots" 9 (Qaoa.two_qubit_count q);
  (* 41 unitaries + 4 measures = 45 instructions; the paper counts 43
     gates with its own accounting. *)
  Alcotest.(check int) "gate count" 45 (Qaoa.gate_count q);
  Alcotest.(check (list int)) "uses only the region" [ 5; 10; 11; 12 ]
    (Circuit.used_qubits q.Qaoa.circuit)

let qaoa_rejects_non_line () =
  let rng = Rng.create 42 in
  Alcotest.(check bool) "non-line rejected" true
    (try
       ignore (Qaoa.build pough ~rng ~region:[ 0; 1; 2; 7 ]);
       false
     with Invalid_argument _ -> true)

let qaoa_deterministic_per_seed () =
  let q1 = Qaoa.build pough ~rng:(Rng.create 43) ~region:[ 5; 10; 11; 12 ] in
  let q2 = Qaoa.build pough ~rng:(Rng.create 43) ~region:[ 5; 10; 11; 12 ] in
  let s1, _ = Core.Exec.run_ideal q1.Qaoa.circuit in
  let s2, _ = Core.Exec.run_ideal q2.Qaoa.circuit in
  Alcotest.(check (float 1e-9)) "same instance" 1.0 (Core.State.fidelity s1 s2)

let qaoa_outer_cnots_parallel () =
  let rng = Rng.create 44 in
  let q = Qaoa.build pough ~rng ~region:[ 5; 10; 11; 12 ] in
  let dag = Core.Dag.of_circuit q.Qaoa.circuit in
  let cnots =
    List.filter (fun g -> Core.Gate.is_two_qubit g) (Circuit.gates q.Qaoa.circuit)
  in
  (* first two CNOTs of the first entangling layer are independent *)
  match cnots with
  | a :: b :: _ ->
    Alcotest.(check bool) "outer pair can overlap" true
      (Core.Dag.can_overlap dag a.Core.Gate.id b.Core.Gate.id)
  | _ -> Alcotest.fail "expected cnots"

(* ---- Hidden shift ---- *)

let hs_noiseless_outputs_shift () =
  (* Key correctness property: on a noiseless device the circuit
     returns the shift deterministically, for every shift. *)
  let device = Presets.linear 4 in
  let rng = Rng.create 45 in
  let shifts =
    [ [ false; false; false; false ]; [ true; false; true; true ]; [ true; true; true; true ];
      [ false; true; false; true ] ]
  in
  List.iter
    (fun shift ->
      let hs = Hidden_shift.build device ~region:[ 0; 1; 2; 3 ] ~shift ~redundancy:0 in
      (* strip noise: execute ideally and sample *)
      let state, used = Core.Exec.run_ideal hs.Hidden_shift.circuit in
      Alcotest.(check int) "4 qubits" 4 (List.length used);
      let expected_index =
        List.fold_left
          (fun acc (i, b) -> if b then acc lor (1 lsl i) else acc)
          0
          (List.mapi (fun i b -> (i, b)) shift)
      in
      Alcotest.(check (float 1e-9)) "deterministic shift output" 1.0
        (Core.State.probability state expected_index);
      ignore rng)
    shifts

let hs_redundancy_gate_count () =
  let device = Presets.linear 4 in
  let plain = Hidden_shift.build device ~region:[ 0; 1; 2; 3 ] ~shift:[ true; false; false; false ] ~redundancy:0 in
  let redundant = Hidden_shift.build device ~region:[ 0; 1; 2; 3 ] ~shift:[ true; false; false; false ] ~redundancy:1 in
  Alcotest.(check int) "plain: 4 cnots" 4 (Circuit.two_qubit_count plain.Hidden_shift.circuit);
  Alcotest.(check int) "redundant: 12 cnots" 12
    (Circuit.two_qubit_count redundant.Hidden_shift.circuit)

let hs_redundancy_preserves_function () =
  let device = Presets.linear 4 in
  let shift = [ false; true; true; false ] in
  let hs = Hidden_shift.build device ~region:[ 0; 1; 2; 3 ] ~shift ~redundancy:1 in
  let state, _ = Core.Exec.run_ideal hs.Hidden_shift.circuit in
  Alcotest.(check (float 1e-9)) "still outputs shift" 1.0 (Core.State.probability state 0b0110)

let hs_expected_string_ordering () =
  (* Region listed out of sorted order: expected string must follow
     sorted measured qubits. *)
  let hs =
    Hidden_shift.build pough ~region:[ 15; 10; 11; 12 ] ~shift:[ true; false; false; false ]
      ~redundancy:0
  in
  (* shift bit true is on hardware qubit 15; sorted order 10,11,12,15
     puts it last. *)
  Alcotest.(check string) "expected string" "0001" hs.Hidden_shift.expected

let hs_error_rate () =
  let hs =
    Hidden_shift.build pough ~region:[ 5; 10; 11; 12 ] ~shift:[ true; true; false; false ]
      ~redundancy:0
  in
  let counts = [ (hs.Hidden_shift.expected, 75); ("0000", 25) ] in
  let get k = Option.value ~default:0 (List.assoc_opt k counts) in
  Alcotest.(check (float 1e-9)) "error rate" 0.25
    (Hidden_shift.error_rate hs ~counts_get:get ~total:100)

(* ---- Supremacy ---- *)

let supremacy_structure () =
  let rng = Rng.create 46 in
  let s = Supremacy.build pough ~rng ~nqubits:12 ~target_gates:300 in
  Alcotest.(check int) "12 qubits" 12 (List.length s.Supremacy.qubits);
  Alcotest.(check bool) "at least target gates" true (Circuit.length s.Supremacy.circuit >= 300);
  (* all CNOTs on edges inside the region *)
  let topo = Device.topology pough in
  List.iter
    (fun g ->
      if Core.Gate.is_two_qubit g then
        match g.Core.Gate.qubits with
        | [ a; b ] ->
          Alcotest.(check bool) "cnot on edge" true (Topology.has_edge topo (a, b));
          Alcotest.(check bool) "inside region" true
            (List.mem a s.Supremacy.qubits && List.mem b s.Supremacy.qubits)
        | _ -> Alcotest.fail "malformed")
    (Circuit.gates s.Supremacy.circuit)

let supremacy_region_connected () =
  let rng = Rng.create 47 in
  let s = Supremacy.build pough ~rng ~nqubits:8 ~target_gates:100 in
  let topo = Device.topology pough in
  (* every region qubit reachable from the first within the region *)
  let region = s.Supremacy.qubits in
  let first = List.hd region in
  List.iter
    (fun q ->
      Alcotest.(check bool) "connected in device" true
        (Topology.qubit_distance topo first q < max_int))
    region

let supremacy_rejects_oversize () =
  let rng = Rng.create 48 in
  Alcotest.(check bool) "too large rejected" true
    (try
       ignore (Supremacy.build pough ~rng ~nqubits:21 ~target_gates:10);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "benchmarks.swap",
      [
        Alcotest.test_case "structure" `Quick swap_structure;
        Alcotest.test_case "produces bell state" `Quick swap_produces_bell_state;
        Alcotest.test_case "cnots on edges" `Quick swap_all_cnots_on_edges;
        Alcotest.test_case "crosstalk-prone detection" `Quick swap_crosstalk_prone_detection;
        Alcotest.test_case "crosstalk-free paths" `Quick swap_crosstalk_free_paths;
      ] );
    ( "benchmarks.qaoa",
      [
        Alcotest.test_case "structure" `Quick qaoa_structure;
        Alcotest.test_case "rejects non-line" `Quick qaoa_rejects_non_line;
        Alcotest.test_case "deterministic per seed" `Quick qaoa_deterministic_per_seed;
        Alcotest.test_case "outer cnots parallel" `Quick qaoa_outer_cnots_parallel;
      ] );
    ( "benchmarks.hidden_shift",
      [
        Alcotest.test_case "noiseless outputs shift" `Quick hs_noiseless_outputs_shift;
        Alcotest.test_case "redundancy gate count" `Quick hs_redundancy_gate_count;
        Alcotest.test_case "redundancy preserves function" `Quick hs_redundancy_preserves_function;
        Alcotest.test_case "expected string ordering" `Quick hs_expected_string_ordering;
        Alcotest.test_case "error rate" `Quick hs_error_rate;
      ] );
    ( "benchmarks.supremacy",
      [
        Alcotest.test_case "structure" `Quick supremacy_structure;
        Alcotest.test_case "region connected" `Quick supremacy_region_connected;
        Alcotest.test_case "rejects oversize" `Quick supremacy_rejects_oversize;
      ] );
  ]
