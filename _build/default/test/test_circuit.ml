(* Unit and property tests for Qcx_circuit: gates, circuits, the
   dependency DAG, schedules, QASM emission. *)

module Gate = Core.Gate
module Circuit = Core.Circuit
module Dag = Core.Dag
module Schedule = Core.Schedule

(* ---- Gate ---- *)

let gate_validate () =
  let ok kind qubits = Gate.validate ~nqubits:4 { Gate.id = 0; kind; qubits } = Ok () in
  Alcotest.(check bool) "cnot ok" true (ok Gate.Cnot [ 0; 1 ]);
  Alcotest.(check bool) "cnot arity" false (ok Gate.Cnot [ 0 ]);
  Alcotest.(check bool) "cnot dup" false (ok Gate.Cnot [ 1; 1 ]);
  Alcotest.(check bool) "out of range" false (ok Gate.H [ 9 ]);
  Alcotest.(check bool) "barrier needs operands" false (ok Gate.Barrier []);
  Alcotest.(check bool) "measure ok" true (ok Gate.Measure [ 2 ])

let gate_to_string () =
  Alcotest.(check string) "cx" "cx q[0], q[1]"
    (Gate.to_string { Gate.id = 0; kind = Gate.Cnot; qubits = [ 0; 1 ] });
  Alcotest.(check string) "rz" "rz(1.5) q[2]"
    (Gate.to_string { Gate.id = 0; kind = Gate.Rz 1.5; qubits = [ 2 ] })

let gate_predicates () =
  let g kind qubits = { Gate.id = 0; kind; qubits } in
  Alcotest.(check bool) "cnot is 2q" true (Gate.is_two_qubit (g Gate.Cnot [ 0; 1 ]));
  Alcotest.(check bool) "h is 1q" true (Gate.is_single_qubit (g Gate.H [ 0 ]));
  Alcotest.(check bool) "measure not unitary" false (Gate.is_unitary (g Gate.Measure [ 0 ]));
  Alcotest.(check bool) "barrier not unitary" false (Gate.is_unitary (g Gate.Barrier [ 0 ]))

(* ---- Circuit ---- *)

let build () =
  let c = Circuit.create 3 in
  let c = Circuit.h c 0 in
  let c = Circuit.cnot c ~control:0 ~target:1 in
  let c = Circuit.cnot c ~control:1 ~target:2 in
  Circuit.measure_all c

let circuit_basics () =
  let c = build () in
  Alcotest.(check int) "length" 6 (Circuit.length c);
  Alcotest.(check int) "cnots" 2 (Circuit.two_qubit_count c);
  Alcotest.(check int) "unitaries" 3 (Circuit.unitary_count c);
  Alcotest.(check (list int)) "used qubits" [ 0; 1; 2 ] (Circuit.used_qubits c);
  Alcotest.(check int) "depth" 3 (Circuit.depth c)

let circuit_ids_sequential () =
  let c = build () in
  List.iteri (fun i g -> Alcotest.(check int) "id order" i g.Gate.id) (Circuit.gates c)

let circuit_append () =
  let a = Circuit.h (Circuit.create 2) 0 in
  let b = Circuit.x (Circuit.create 2) 1 in
  let c = Circuit.append a b in
  Alcotest.(check int) "combined length" 2 (Circuit.length c);
  Alcotest.(check int) "ids reassigned" 1 (List.nth (Circuit.gates c) 1).Gate.id

let circuit_map_qubits () =
  let c = Circuit.cnot (Circuit.create 2) ~control:0 ~target:1 in
  let mapped = Circuit.map_qubits c (fun q -> q + 5) ~nqubits:10 in
  Alcotest.(check (list int)) "relabeled" [ 5; 6 ] (List.hd (Circuit.gates mapped)).Gate.qubits

let circuit_map_qubits_injective () =
  let c = Circuit.cnot (Circuit.create 2) ~control:0 ~target:1 in
  Alcotest.check_raises "non-injective"
    (Invalid_argument "Circuit.map_qubits: mapping not injective on used qubits") (fun () ->
      ignore (Circuit.map_qubits c (fun _ -> 3) ~nqubits:4))

let circuit_decompose_swaps () =
  let c = Circuit.swap (Circuit.create 2) 0 1 in
  let d = Circuit.decompose_swaps c in
  Alcotest.(check int) "three cnots" 3 (Circuit.two_qubit_count d);
  Alcotest.(check bool) "no swaps left" true
    (List.for_all (fun g -> g.Gate.kind <> Gate.Swap) (Circuit.gates d));
  (* Semantics: SWAP = X on the other wire when input is |01>. *)
  let c2 = Circuit.x (Circuit.create 2) 0 in
  let c2 = Circuit.swap c2 0 1 in
  let state, _ = Core.Exec.run_ideal (Circuit.decompose_swaps c2) in
  Alcotest.(check (float 1e-9)) "amplitude on |10>" 1.0 (Core.State.probability state 2)

let circuit_measure_all_skips_unused () =
  let c = Circuit.h (Circuit.create 5) 2 in
  let c = Circuit.measure_all c in
  Alcotest.(check int) "one measure" 2 (Circuit.length c)

(* ---- Dag ---- *)

let dag_dependencies () =
  let c = build () in
  let dag = Dag.of_circuit c in
  Alcotest.(check (list int)) "cnot01 depends on h" [ 0 ] (Dag.preds dag 1);
  Alcotest.(check (list int)) "cnot12 depends on cnot01" [ 1 ] (Dag.preds dag 2);
  Alcotest.(check bool) "transitive ancestor" true (Dag.is_ancestor dag 0 2);
  Alcotest.(check bool) "not reflexive" false (Dag.is_ancestor dag 1 1);
  Alcotest.(check bool) "no reverse" false (Dag.is_ancestor dag 2 0)

let dag_can_overlap () =
  let c = Circuit.create 4 in
  let c = Circuit.cnot c ~control:0 ~target:1 in
  let c = Circuit.cnot c ~control:2 ~target:3 in
  let c = Circuit.cnot c ~control:1 ~target:2 in
  let dag = Dag.of_circuit c in
  Alcotest.(check bool) "independent cnots overlap" true (Dag.can_overlap dag 0 1);
  Alcotest.(check bool) "dependent cnots do not" false (Dag.can_overlap dag 0 2);
  Alcotest.(check (list int)) "can_overlap_set" [ 1 ] (Dag.can_overlap_set dag 0)

let dag_barrier_orders () =
  let c = Circuit.create 2 in
  let c = Circuit.h c 0 in
  let c = Circuit.barrier c [ 0; 1 ] in
  let c = Circuit.x c 1 in
  let dag = Dag.of_circuit c in
  (* h -> barrier -> x: the barrier creates the cross-qubit order. *)
  Alcotest.(check bool) "barrier orders across qubits" true (Dag.is_ancestor dag 0 2)

let dag_roots () =
  let c = build () in
  Alcotest.(check (list int)) "roots" [ 0 ] (Dag.roots (Dag.of_circuit c))

(* ---- Schedule ---- *)

let simple_schedule () =
  let c = Circuit.create 2 in
  let c = Circuit.h c 0 in
  let c = Circuit.cnot c ~control:0 ~target:1 in
  let starts = [| 0.0; 50.0 |] in
  let durations = [| 50.0; 300.0 |] in
  Schedule.make c ~starts ~durations

let schedule_accessors () =
  let s = simple_schedule () in
  Alcotest.(check (float 1e-9)) "makespan" 350.0 (Schedule.makespan s);
  Alcotest.(check (float 1e-9)) "finish" 350.0 (Schedule.finish s 1);
  Alcotest.(check bool) "no overlap back-to-back" false (Schedule.overlaps s 0 1)

let schedule_validate_ok () =
  match Schedule.validate (simple_schedule ()) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let schedule_validate_dependency_violation () =
  let c = Circuit.create 2 in
  let c = Circuit.h c 0 in
  let c = Circuit.cnot c ~control:0 ~target:1 in
  let s = Schedule.make c ~starts:[| 0.0; 10.0 |] ~durations:[| 50.0; 300.0 |] in
  Alcotest.(check bool) "dependency violation caught" true (Result.is_error (Schedule.validate s))

let schedule_validate_qubit_conflict () =
  let c = Circuit.create 2 in
  let c = Circuit.h c 0 in
  let c = Circuit.x c 0 in
  let s = Schedule.make c ~starts:[| 0.0; 10.0 |] ~durations:[| 50.0; 50.0 |] in
  Alcotest.(check bool) "conflict caught" true (Result.is_error (Schedule.validate s))

let schedule_validate_readout_sync () =
  let c = Circuit.create 2 in
  let c = Circuit.measure c 0 in
  let c = Circuit.measure c 1 in
  let bad = Schedule.make c ~starts:[| 0.0; 5.0 |] ~durations:[| 100.0; 100.0 |] in
  Alcotest.(check bool) "async readout caught" true (Result.is_error (Schedule.validate bad))

let schedule_lifetime () =
  let s = simple_schedule () in
  (match Schedule.qubit_lifetime s 0 with
  | Some (first, last) ->
    Alcotest.(check (float 1e-9)) "first" 0.0 first;
    Alcotest.(check (float 1e-9)) "last" 350.0 last
  | None -> Alcotest.fail "expected lifetime");
  match Schedule.qubit_lifetime s 1 with
  | Some (first, _) -> Alcotest.(check (float 1e-9)) "starts at cnot" 50.0 first
  | None -> Alcotest.fail "expected lifetime"

let schedule_right_align () =
  (* Two parallel 1q gates of different length: after right-align both
     must end at the same time. *)
  let c = Circuit.create 2 in
  let c = Circuit.h c 0 in
  let c = Circuit.x c 1 in
  let s = Schedule.make c ~starts:[| 0.0; 0.0 |] ~durations:[| 50.0; 20.0 |] in
  let aligned = Schedule.right_align s in
  Alcotest.(check (float 1e-9)) "short gate pushed late" 30.0 (Schedule.start aligned 1);
  match Schedule.validate aligned with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let schedule_shift_to_zero () =
  let c = Circuit.h (Circuit.create 1) 0 in
  let s = Schedule.make c ~starts:[| 100.0 |] ~durations:[| 50.0 |] in
  Alcotest.(check (float 1e-9)) "shifted" 0.0 (Schedule.start (Schedule.shift_to_zero s) 0)

(* ---- Qasm ---- *)

let qasm_emission () =
  let c = build () in
  let q = Core.Qasm.of_circuit c in
  Alcotest.(check bool) "header" true (String.length q > 0);
  Alcotest.(check bool) "has cx" true
    (List.exists (fun line -> line = "cx q[0], q[1];") (String.split_on_char '\n' q));
  Alcotest.(check bool) "has measure" true
    (List.exists (fun line -> line = "measure q[2] -> c[2];") (String.split_on_char '\n' q))

(* ---- Qasm parser ---- *)

let qasm_parse_roundtrip () =
  let c = build () in
  match Core.Qasm.parse (Core.Qasm.of_circuit c) with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    Alcotest.(check int) "same gate count" (Circuit.length c) (Circuit.length parsed);
    List.iter2
      (fun a b ->
        Alcotest.(check bool) "same kind" true (Gate.equal_kind a.Gate.kind b.Gate.kind);
        Alcotest.(check (list int)) "same operands" a.Gate.qubits b.Gate.qubits)
      (Circuit.gates c) (Circuit.gates parsed)

let qasm_parse_angles () =
  let src =
    "qreg q[2];\nrz(pi/2) q[0];\nrx(-pi/4) q[1];\nry(1.25) q[0];\nu2(0,pi) q[1];\nu1(2*pi) q[0];\n"
  in
  match Core.Qasm.parse src with
  | Error e -> Alcotest.fail e
  | Ok c -> (
    match List.map (fun g -> g.Gate.kind) (Circuit.gates c) with
    | [ Gate.Rz a; Gate.Rx b; Gate.Ry r; Gate.U2 (phi, lam); Gate.Rz u1 ] ->
      Alcotest.(check (float 1e-9)) "pi/2" (Float.pi /. 2.0) a;
      Alcotest.(check (float 1e-9)) "-pi/4" (-.Float.pi /. 4.0) b;
      Alcotest.(check (float 1e-9)) "literal" 1.25 r;
      Alcotest.(check (float 1e-9)) "u2 phi" 0.0 phi;
      Alcotest.(check (float 1e-9)) "u2 lam" Float.pi lam;
      Alcotest.(check (float 1e-9)) "u1 as rz" (2.0 *. Float.pi) u1
    | _ -> Alcotest.fail "unexpected gate kinds")

let qasm_parse_cz_expansion () =
  let src = "qreg q[2];\ncz q[0], q[1];\n" in
  match Core.Qasm.parse src with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check int) "H cx H" 3 (Circuit.length c);
    (* semantics: CZ is symmetric and diagonal; check via statevector *)
    let s, _ = Core.Exec.run_ideal (Circuit.h (Circuit.h c 0) 1) in
    ignore s

let qasm_parse_multi_register () =
  let src = "qreg a[2];\nqreg b[2];\ncx a[1], b[0];\n" in
  match Core.Qasm.parse src with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check int) "4 qubits" 4 (Circuit.nqubits c);
    Alcotest.(check (list int)) "offsets applied" [ 1; 2 ]
      (List.hd (Circuit.gates c)).Gate.qubits

let qasm_parse_errors () =
  let check_err src =
    match Core.Qasm.parse src with
    | Ok _ -> Alcotest.failf "expected parse error for %S" src
    | Error _ -> ()
  in
  check_err "h q[0];\n";                        (* no qreg *)
  check_err "qreg q[2];\nfrobnicate q[0];\n";   (* unknown gate *)
  check_err "qreg q[2];\nh r[0];\n";            (* unknown register *)
  check_err "qreg q[2];\nrz(huh) q[0];\n";      (* bad angle *)
  check_err "qreg q[2];\nqreg q[3];\n"          (* duplicate qreg *)

let qasm_parse_comments_and_measure () =
  let src =
    "// a comment\nOPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\ncreg c[2];\n\
     h q[0]; // trailing comment\nbarrier q[0], q[1];\nmeasure q[0] -> c[0];\n"
  in
  match Core.Qasm.parse src with
  | Error e -> Alcotest.fail e
  | Ok c ->
    Alcotest.(check int) "three statements" 3 (Circuit.length c);
    Alcotest.(check bool) "measure parsed" true
      (List.exists Gate.is_measure (Circuit.gates c))

let qasm_parser_suite =
  ( "circuit.qasm-parser",
    [
      Alcotest.test_case "roundtrip" `Quick qasm_parse_roundtrip;
      Alcotest.test_case "angles" `Quick qasm_parse_angles;
      Alcotest.test_case "cz expansion" `Quick qasm_parse_cz_expansion;
      Alcotest.test_case "multi register" `Quick qasm_parse_multi_register;
      Alcotest.test_case "errors" `Quick qasm_parse_errors;
      Alcotest.test_case "comments and measure" `Quick qasm_parse_comments_and_measure;
    ] )

(* ---- properties ---- *)

(* Random circuit generator over 4 qubits. *)
let gen_circuit =
  QCheck.Gen.(
    let gen_gate =
      oneof
        [
          map (fun q -> `H q) (int_range 0 3);
          map (fun q -> `X q) (int_range 0 3);
          map2 (fun a b -> `Cx (a, b)) (int_range 0 3) (int_range 0 3);
        ]
    in
    list_size (int_range 1 25) gen_gate)

let circuit_of_ops ops =
  List.fold_left
    (fun c op ->
      match op with
      | `H q -> Circuit.h c q
      | `X q -> Circuit.x c q
      | `Cx (a, b) when a <> b -> Circuit.cnot c ~control:a ~target:b
      | `Cx _ -> c)
    (Circuit.create 4) ops

let prop_asap_valid =
  QCheck.Test.make ~name:"naive ASAP schedule of any circuit validates" ~count:100
    (QCheck.make gen_circuit) (fun ops ->
      let c = circuit_of_ops ops in
      if Circuit.length c = 0 then true
      else begin
        let dag = Dag.of_circuit c in
        let durations = Array.make (Circuit.length c) 10.0 in
        let starts = Array.make (Circuit.length c) 0.0 in
        List.iter
          (fun g ->
            let id = g.Gate.id in
            starts.(id) <-
              List.fold_left (fun acc p -> max acc (starts.(p) +. durations.(p))) 0.0
                (Dag.preds dag id))
          (Circuit.gates c);
        Result.is_ok (Schedule.validate (Schedule.make c ~starts ~durations))
      end)

let prop_ancestor_antisymmetric =
  QCheck.Test.make ~name:"ancestor relation is antisymmetric" ~count:100
    (QCheck.make gen_circuit) (fun ops ->
      let c = circuit_of_ops ops in
      let n = Circuit.length c in
      if n = 0 then true
      else begin
        let dag = Dag.of_circuit c in
        let ok = ref true in
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            if i <> j && Dag.is_ancestor dag i j && Dag.is_ancestor dag j i then ok := false
          done
        done;
        !ok
      end)

let suite =
  [
    ( "circuit.gate",
      [
        Alcotest.test_case "validate" `Quick gate_validate;
        Alcotest.test_case "to_string" `Quick gate_to_string;
        Alcotest.test_case "predicates" `Quick gate_predicates;
      ] );
    ( "circuit.circuit",
      [
        Alcotest.test_case "basics" `Quick circuit_basics;
        Alcotest.test_case "sequential ids" `Quick circuit_ids_sequential;
        Alcotest.test_case "append" `Quick circuit_append;
        Alcotest.test_case "map qubits" `Quick circuit_map_qubits;
        Alcotest.test_case "map qubits injectivity" `Quick circuit_map_qubits_injective;
        Alcotest.test_case "decompose swaps" `Quick circuit_decompose_swaps;
        Alcotest.test_case "measure_all skips unused" `Quick circuit_measure_all_skips_unused;
      ] );
    ( "circuit.dag",
      [
        Alcotest.test_case "dependencies" `Quick dag_dependencies;
        Alcotest.test_case "can overlap" `Quick dag_can_overlap;
        Alcotest.test_case "barrier orders" `Quick dag_barrier_orders;
        Alcotest.test_case "roots" `Quick dag_roots;
        QCheck_alcotest.to_alcotest prop_ancestor_antisymmetric;
      ] );
    ( "circuit.schedule",
      [
        Alcotest.test_case "accessors" `Quick schedule_accessors;
        Alcotest.test_case "validate ok" `Quick schedule_validate_ok;
        Alcotest.test_case "dependency violation" `Quick schedule_validate_dependency_violation;
        Alcotest.test_case "qubit conflict" `Quick schedule_validate_qubit_conflict;
        Alcotest.test_case "readout sync" `Quick schedule_validate_readout_sync;
        Alcotest.test_case "lifetime" `Quick schedule_lifetime;
        Alcotest.test_case "right align" `Quick schedule_right_align;
        Alcotest.test_case "shift to zero" `Quick schedule_shift_to_zero;
        QCheck_alcotest.to_alcotest prop_asap_valid;
      ] );
    ("circuit.qasm", [ Alcotest.test_case "emission" `Quick qasm_emission ]);
    qasm_parser_suite;
  ]
