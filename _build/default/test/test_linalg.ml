(* Unit tests for Qcx_linalg: complex arithmetic, matrices, gates. *)

module Cplx = Core.Cplx
module Mat = Core.Mat
module Gates = Core.Gates

let cplx = Alcotest.testable (fun fmt z -> Format.pp_print_string fmt (Cplx.to_string z)) (Cplx.approx_equal ~tol:1e-9)

let mat_equal = Mat.approx_equal ~tol:1e-9

let check_mat msg a b = Alcotest.(check bool) msg true (mat_equal a b)

(* ---- Cplx ---- *)

let cplx_arithmetic () =
  Alcotest.check cplx "i*i = -1" (Cplx.re (-1.0)) (Cplx.mul Cplx.i Cplx.i);
  Alcotest.check cplx "add" (Cplx.make 3.0 4.0) (Cplx.add (Cplx.make 1.0 1.0) (Cplx.make 2.0 3.0));
  Alcotest.check cplx "conj" (Cplx.make 1.0 (-2.0)) (Cplx.conj (Cplx.make 1.0 2.0));
  Alcotest.check cplx "div roundtrip"
    (Cplx.make 1.0 2.0)
    (Cplx.div (Cplx.mul (Cplx.make 1.0 2.0) (Cplx.make 3.0 (-1.0))) (Cplx.make 3.0 (-1.0)));
  Alcotest.(check (float 1e-12)) "norm2" 5.0 (Cplx.norm2 (Cplx.make 1.0 2.0));
  Alcotest.check cplx "exp_i pi = -1" (Cplx.re (-1.0)) (Cplx.exp_i Float.pi)

(* ---- Mat ---- *)

let mat_identity_mul () =
  let m = Mat.of_arrays [| [| Cplx.re 1.0; Cplx.re 2.0 |]; [| Cplx.re 3.0; Cplx.re 4.0 |] |] in
  check_mat "I*m = m" m (Mat.mul (Mat.identity 2) m);
  check_mat "m*I = m" m (Mat.mul m (Mat.identity 2))

let mat_adjoint () =
  let m = Mat.of_arrays [| [| Cplx.make 1.0 1.0; Cplx.re 2.0 |]; [| Cplx.re 0.0; Cplx.i |] |] in
  let a = Mat.adjoint m in
  Alcotest.check cplx "conjugated and transposed" (Cplx.make 1.0 (-1.0)) (Mat.get a 0 0);
  Alcotest.check cplx "off diagonal" (Cplx.re 2.0) (Mat.get a 1 0)

let mat_kron_dims () =
  let k = Mat.kron (Mat.identity 2) (Mat.identity 3) in
  Alcotest.(check int) "rows" 6 (Mat.rows k);
  check_mat "I (x) I = I" (Mat.identity 6) k

let mat_kron_structure () =
  (* X (x) I applied to |00> (index 0) must land on index 2 (bit 1 set:
     the first kron factor is the high bit). *)
  let xI = Mat.kron Gates.x Gates.id2 in
  let v = Array.make 4 Cplx.zero in
  v.(0) <- Cplx.one;
  let out = Mat.apply xI v in
  Alcotest.check cplx "amplitude moved to |10>" Cplx.one out.(2)

let mat_trace () =
  Alcotest.check cplx "trace of I4" (Cplx.re 4.0) (Mat.trace (Mat.identity 4))

let mat_solve_roundtrip () =
  let a =
    Mat.of_arrays
      [|
        [| Cplx.re 2.0; Cplx.re 1.0; Cplx.zero |];
        [| Cplx.re 1.0; Cplx.re 3.0; Cplx.i |];
        [| Cplx.zero; Cplx.make 0.0 (-1.0); Cplx.re 4.0 |];
      |]
  in
  let x = [| Cplx.re 1.0; Cplx.make 2.0 1.0; Cplx.re (-1.0) |] in
  let b = Mat.apply a x in
  let solved = Mat.solve a b in
  Array.iteri (fun i v -> Alcotest.check cplx (Printf.sprintf "x[%d]" i) x.(i) v) solved

let mat_solve_singular () =
  let a = Mat.of_arrays [| [| Cplx.re 1.0; Cplx.re 1.0 |]; [| Cplx.re 1.0; Cplx.re 1.0 |] |] in
  Alcotest.check_raises "singular" (Failure "Mat.solve: singular matrix") (fun () ->
      ignore (Mat.solve a [| Cplx.one; Cplx.one |]))

let mat_real_solve () =
  let a = [| [| 2.0; 0.0 |]; [| 0.0; 4.0 |] |] in
  let x = Mat.real_solve a [| 2.0; 8.0 |] in
  Alcotest.(check (float 1e-9)) "x0" 1.0 x.(0);
  Alcotest.(check (float 1e-9)) "x1" 2.0 x.(1)

(* ---- Gates ---- *)

let gates_unitary () =
  List.iter
    (fun (name, m) ->
      Alcotest.(check bool) (name ^ " unitary") true (Mat.is_unitary m))
    [
      ("x", Gates.x); ("y", Gates.y); ("z", Gates.z); ("h", Gates.h); ("s", Gates.s);
      ("sdg", Gates.sdg); ("t", Gates.t); ("tdg", Gates.tdg); ("sx", Gates.sx);
      ("rx", Gates.rx 0.7); ("ry", Gates.ry 1.3); ("rz", Gates.rz 2.1);
      ("u2", Gates.u2 0.4 1.9); ("cnot", Gates.cnot ~control:0 ~target:1);
      ("swap", Gates.swap2); ("cz", Gates.cz);
    ]

let gates_algebra () =
  check_mat "HH = I" (Mat.identity 2) (Mat.mul Gates.h Gates.h);
  check_mat "SS = Z" Gates.z (Mat.mul Gates.s Gates.s);
  check_mat "S Sdg = I" (Mat.identity 2) (Mat.mul Gates.s Gates.sdg);
  check_mat "TT = S" Gates.s (Mat.mul Gates.t Gates.t);
  check_mat "HXH = Z" Gates.z (Mat.mul (Mat.mul Gates.h Gates.x) Gates.h);
  check_mat "SxSx = X" Gates.x (Mat.mul Gates.sx Gates.sx);
  check_mat "u2(0,pi) = H" Gates.h (Gates.u2 0.0 Float.pi)

let gates_cnot_truth_table () =
  let cx = Gates.cnot ~control:0 ~target:1 in
  (* control = bit0: |01> (idx 1) -> |11> (idx 3). *)
  let v = Array.make 4 Cplx.zero in
  v.(1) <- Cplx.one;
  let out = Mat.apply cx v in
  Alcotest.check cplx "flips target" Cplx.one out.(3);
  (* |00> fixed *)
  let v0 = Array.make 4 Cplx.zero in
  v0.(0) <- Cplx.one;
  Alcotest.check cplx "fixes |00>" Cplx.one (Mat.apply cx v0).(0)

let gates_swap () =
  let v = Array.make 4 Cplx.zero in
  v.(1) <- Cplx.one;
  (* |01> -> |10> *)
  Alcotest.check cplx "swap" Cplx.one (Mat.apply Gates.swap2 v).(2)

let gates_bell_density () =
  let rho = Gates.density_of_state Gates.bell_phi_plus in
  Alcotest.check cplx "trace 1" Cplx.one (Mat.trace rho);
  Alcotest.check cplx "coherence" (Cplx.re 0.5) (Mat.get rho 0 3)

let prop_rz_composition =
  QCheck.Test.make ~name:"rz(a) rz(b) = rz(a+b)" ~count:50
    QCheck.(pair (float_range (-3.0) 3.0) (float_range (-3.0) 3.0))
    (fun (a, b) ->
      Mat.approx_equal ~tol:1e-9 (Mat.mul (Gates.rz a) (Gates.rz b)) (Gates.rz (a +. b)))

let prop_solve_roundtrip =
  QCheck.Test.make ~name:"solve(a, a x) = x for diagonally dominant a" ~count:50
    QCheck.(list_of_size (Gen.return 9) (float_range (-1.0) 1.0))
    (fun coeffs ->
      let a =
        Mat.init 3 3 (fun i j ->
            let base = List.nth coeffs ((3 * i) + j) in
            Cplx.re (if i = j then base +. 5.0 else base))
      in
      let x = [| Cplx.re 1.0; Cplx.re (-2.0); Cplx.re 0.5 |] in
      let solved = Mat.solve a (Mat.apply a x) in
      Array.for_all2 (fun u v -> Cplx.approx_equal ~tol:1e-6 u v) solved x)

let suite =
  [
    ("linalg.cplx", [ Alcotest.test_case "arithmetic" `Quick cplx_arithmetic ]);
    ( "linalg.mat",
      [
        Alcotest.test_case "identity mul" `Quick mat_identity_mul;
        Alcotest.test_case "adjoint" `Quick mat_adjoint;
        Alcotest.test_case "kron dims" `Quick mat_kron_dims;
        Alcotest.test_case "kron structure" `Quick mat_kron_structure;
        Alcotest.test_case "trace" `Quick mat_trace;
        Alcotest.test_case "solve roundtrip" `Quick mat_solve_roundtrip;
        Alcotest.test_case "solve singular" `Quick mat_solve_singular;
        Alcotest.test_case "real solve" `Quick mat_real_solve;
        QCheck_alcotest.to_alcotest prop_solve_roundtrip;
      ] );
    ( "linalg.gates",
      [
        Alcotest.test_case "unitarity" `Quick gates_unitary;
        Alcotest.test_case "algebra" `Quick gates_algebra;
        Alcotest.test_case "cnot truth table" `Quick gates_cnot_truth_table;
        Alcotest.test_case "swap" `Quick gates_swap;
        Alcotest.test_case "bell density" `Quick gates_bell_density;
        QCheck_alcotest.to_alcotest prop_rz_composition;
      ] );
  ]
