(* Unit tests for Qcx_device: topology, calibration, crosstalk data,
   presets, drift. *)

module Topology = Core.Topology
module Calibration = Core.Calibration
module Crosstalk = Core.Crosstalk
module Device = Core.Device
module Presets = Core.Presets
module Drift = Core.Drift

let grid =
  (* Fig 1(a)'s 6-qubit machine shape. *)
  Topology.create ~nqubits:6 ~edges:[ (0, 1); (1, 2); (2, 3); (0, 4); (4, 5); (3, 5) ]

(* ---- Topology ---- *)

let topology_basics () =
  Alcotest.(check int) "nqubits" 6 (Topology.nqubits grid);
  Alcotest.(check bool) "edge normalized lookup" true (Topology.has_edge grid (1, 0));
  Alcotest.(check bool) "non-edge" false (Topology.has_edge grid (0, 3));
  Alcotest.(check (list int)) "neighbors" [ 1; 4 ] (Topology.neighbors grid 0);
  Alcotest.(check int) "degree" 2 (Topology.degree grid 5)

let topology_distance () =
  Alcotest.(check int) "adjacent" 1 (Topology.qubit_distance grid 0 1);
  Alcotest.(check int) "self" 0 (Topology.qubit_distance grid 3 3);
  Alcotest.(check int) "across" 3 (Topology.qubit_distance grid 1 5)

let topology_path () =
  let path = Topology.shortest_path grid 0 3 in
  Alcotest.(check int) "length" 4 (List.length path);
  Alcotest.(check int) "starts at src" 0 (List.hd path);
  Alcotest.(check int) "ends at dst" 3 (List.nth path 3);
  (* consecutive hops are edges *)
  let rec check = function
    | a :: (b :: _ as rest) ->
      Alcotest.(check bool) "path uses edges" true (Topology.has_edge grid (a, b));
      check rest
    | _ -> ()
  in
  check path

let topology_disconnected () =
  let t = Topology.create ~nqubits:4 ~edges:[ (0, 1) ] in
  Alcotest.(check int) "disconnected distance" max_int (Topology.qubit_distance t 0 3);
  Alcotest.(check (list int)) "empty path" [] (Topology.shortest_path t 0 3)

let topology_gate_distance () =
  Alcotest.(check int) "sharing qubit" 0 (Topology.gate_distance grid (0, 1) (1, 2));
  Alcotest.(check int) "adjacent gates" 1 (Topology.gate_distance grid (0, 1) (2, 3))

let topology_parallel_pairs () =
  let pairs = Topology.parallel_gate_pairs grid in
  (* 6 edges -> C(6,2)=15 minus pairs sharing a qubit. *)
  Alcotest.(check bool) "no pair shares a qubit" true
    (List.for_all (fun ((a, b), (c, d)) -> a <> c && a <> d && b <> c && b <> d) pairs);
  let one_hop = Topology.one_hop_gate_pairs grid in
  Alcotest.(check bool) "one-hop subset of parallel" true
    (List.for_all (fun p -> List.mem p pairs) one_hop);
  Alcotest.(check bool) "one-hop pairs at distance 1" true
    (List.for_all (fun (e1, e2) -> Topology.gate_distance grid e1 e2 = 1) one_hop)

let topology_rejects_bad_edges () =
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.create: self loop") (fun () ->
      ignore (Topology.create ~nqubits:3 ~edges:[ (1, 1) ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Topology.create: duplicate edges")
    (fun () -> ignore (Topology.create ~nqubits:3 ~edges:[ (0, 1); (1, 0) ]))

(* ---- Calibration / Device ---- *)

let calibration_updates () =
  let device = Presets.linear 3 in
  let cal = Device.calibration device in
  let g = Calibration.gate cal (0, 1) in
  let cal2 = Calibration.with_gate cal (0, 1) { g with Calibration.cnot_error = 0.5 } in
  Alcotest.(check (float 1e-9)) "updated" 0.5 (Calibration.gate cal2 (0, 1)).Calibration.cnot_error;
  Alcotest.(check (float 1e-9)) "original untouched" g.Calibration.cnot_error
    (Calibration.gate cal (0, 1)).Calibration.cnot_error

let calibration_coherence_limit () =
  let device = Presets.poughkeepsie () in
  let cal = Device.calibration device in
  let q = Calibration.qubit cal 10 in
  Alcotest.(check (float 1e-9)) "min of T1 T2"
    (min q.Calibration.t1 q.Calibration.t2)
    (Calibration.coherence_limit cal 10)

let device_rejects_mismatch () =
  let topo = Topology.create ~nqubits:2 ~edges:[ (0, 1) ] in
  let cal = Device.calibration (Presets.linear 3) in
  Alcotest.check_raises "qubit count mismatch"
    (Invalid_argument "Device.create: calibration / topology qubit count mismatch") (fun () ->
      ignore (Device.create ~name:"bad" ~topology:topo ~calibration:cal ~ground_truth:Crosstalk.empty))

(* ---- Crosstalk ---- *)

let crosstalk_roundtrip () =
  let x = Crosstalk.set Crosstalk.empty ~target:(1, 0) ~spectator:(2, 3) 0.1 in
  Alcotest.(check (option (float 1e-9))) "normalized lookup" (Some 0.1)
    (Crosstalk.conditional x ~target:(0, 1) ~spectator:(3, 2));
  Alcotest.(check (option (float 1e-9))) "direction matters" None
    (Crosstalk.conditional x ~target:(2, 3) ~spectator:(0, 1))

let crosstalk_fallback () =
  let device = Presets.linear 3 in
  let cal = Device.calibration device in
  Alcotest.(check (float 1e-9)) "falls back to independent" 0.015
    (Crosstalk.conditional_or_independent Crosstalk.empty cal ~target:(0, 1) ~spectator:(1, 2))

let crosstalk_flagging () =
  let device = Presets.linear 5 in
  let cal = Device.calibration device in
  (* independent = 0.015 everywhere. *)
  let x = Crosstalk.set_symmetric Crosstalk.empty (0, 1) (2, 3) 0.06 0.02 in
  let flagged = Crosstalk.high_crosstalk_pairs x cal ~threshold:3.0 in
  Alcotest.(check int) "one pair flagged" 1 (List.length flagged);
  let x2 = Crosstalk.set_symmetric Crosstalk.empty (0, 1) (2, 3) 0.03 0.02 in
  Alcotest.(check int) "weak pair not flagged" 0
    (List.length (Crosstalk.high_crosstalk_pairs x2 cal ~threshold:3.0))

let crosstalk_max_ratio () =
  let device = Presets.linear 3 in
  let cal = Device.calibration device in
  let x = Crosstalk.set Crosstalk.empty ~target:(0, 1) ~spectator:(1, 2) 0.15 in
  Alcotest.(check (float 1e-6)) "ratio" 10.0 (Crosstalk.max_ratio x cal)

let crosstalk_restrict_merge () =
  let x = Crosstalk.set_symmetric Crosstalk.empty (0, 1) (2, 3) 0.1 0.1 in
  let x = Crosstalk.set_symmetric x (4, 5) (6, 7) 0.2 0.2 in
  let r = Crosstalk.restrict x [ ((0, 1), (2, 3)) ] in
  Alcotest.(check int) "restricted" 1 (List.length (Crosstalk.interacting_pairs r));
  let fresh = Crosstalk.set Crosstalk.empty ~target:(0, 1) ~spectator:(2, 3) 0.3 in
  let merged = Crosstalk.merge x fresh in
  Alcotest.(check (option (float 1e-9))) "newer wins" (Some 0.3)
    (Crosstalk.conditional merged ~target:(0, 1) ~spectator:(2, 3));
  Alcotest.(check (option (float 1e-9))) "older kept" (Some 0.2)
    (Crosstalk.conditional merged ~target:(4, 5) ~spectator:(6, 7))

(* ---- Presets ---- *)

let presets_paper_counts () =
  let p = Presets.poughkeepsie () in
  Alcotest.(check int) "Poughkeepsie parallel pairs" 221
    (List.length (Topology.parallel_gate_pairs (Device.topology p)));
  Alcotest.(check int) "five high-crosstalk pairs" 5
    (List.length (Device.true_high_crosstalk_pairs p ~threshold:3.0));
  (* Qubit 10's low coherence (Fig. 6's ordering example). *)
  Alcotest.(check bool) "qubit 10 below 6us" true
    (Calibration.coherence_limit (Device.calibration p) 10 < 6000.0)

let presets_deterministic () =
  let a = Presets.boeblingen () and b = Presets.boeblingen () in
  let cal_a = Device.calibration a and cal_b = Device.calibration b in
  List.iter
    (fun e ->
      Alcotest.(check (float 1e-12)) "same calibration"
        (Calibration.gate cal_a e).Calibration.cnot_error
        (Calibration.gate cal_b e).Calibration.cnot_error)
    (Topology.edges (Device.topology a))

let presets_high_pairs_one_hop () =
  List.iter
    (fun d ->
      let topo = Device.topology d in
      List.iter
        (fun (e1, e2) ->
          Alcotest.(check int) "ground-truth pair at 1 hop" 1 (Topology.gate_distance topo e1 e2))
        (Device.true_high_crosstalk_pairs d ~threshold:3.0))
    (Presets.all ())

let presets_regions_are_lines () =
  List.iter
    (fun d ->
      let topo = Device.topology d in
      List.iter
        (fun region ->
          Alcotest.(check int) "4 qubits" 4 (List.length region);
          let rec ok = function
            | a :: (b :: _ as rest) ->
              Alcotest.(check bool) "consecutive edge" true (Topology.has_edge topo (a, b));
              ok rest
            | _ -> ()
          in
          ok region)
        (Presets.qaoa_regions d))
    (Presets.all ())

let presets_by_name () =
  Alcotest.(check bool) "lookup" true (Presets.by_name "johannesburg" <> None);
  Alcotest.(check bool) "unknown" true (Presets.by_name "nonexistent" = None)

(* ---- Drift ---- *)

let drift_day0_identity () =
  let d = Presets.poughkeepsie () in
  let d0 = Drift.on_day d ~day:0 in
  Alcotest.(check (float 1e-12)) "unchanged"
    (Device.cnot_error d (10, 15))
    (Device.cnot_error d0 (10, 15))

let drift_deterministic () =
  let d = Presets.poughkeepsie () in
  let a = Drift.on_day d ~day:3 and b = Drift.on_day d ~day:3 in
  Alcotest.(check (float 1e-12)) "same perturbation"
    (Device.cnot_error a (10, 15))
    (Device.cnot_error b (10, 15))

let drift_bounded () =
  let d = Presets.poughkeepsie () in
  List.iter
    (fun day ->
      let dd = Drift.on_day d ~day in
      List.iter
        (fun e ->
          let ratio = Device.cnot_error dd e /. Device.cnot_error d e in
          Alcotest.(check bool) "cnot error ratio bounded" true (ratio > 0.5 && ratio < 2.0))
        (Topology.edges (Device.topology d)))
    [ 1; 2; 3; 4; 5 ]

let drift_pair_set_stable () =
  let d = Presets.poughkeepsie () in
  let base = List.sort compare (Device.true_high_crosstalk_pairs d ~threshold:3.0) in
  List.iter
    (fun day ->
      let today = Drift.on_day d ~day in
      Alcotest.(check bool) "flagged set stable" true
        (List.sort compare (Device.true_high_crosstalk_pairs today ~threshold:3.0) = base))
    [ 1; 2; 3 ]

let suite =
  [
    ( "device.topology",
      [
        Alcotest.test_case "basics" `Quick topology_basics;
        Alcotest.test_case "distance" `Quick topology_distance;
        Alcotest.test_case "shortest path" `Quick topology_path;
        Alcotest.test_case "disconnected" `Quick topology_disconnected;
        Alcotest.test_case "gate distance" `Quick topology_gate_distance;
        Alcotest.test_case "parallel pairs" `Quick topology_parallel_pairs;
        Alcotest.test_case "rejects bad edges" `Quick topology_rejects_bad_edges;
      ] );
    ( "device.calibration",
      [
        Alcotest.test_case "functional updates" `Quick calibration_updates;
        Alcotest.test_case "coherence limit" `Quick calibration_coherence_limit;
        Alcotest.test_case "device mismatch" `Quick device_rejects_mismatch;
      ] );
    ( "device.crosstalk",
      [
        Alcotest.test_case "roundtrip" `Quick crosstalk_roundtrip;
        Alcotest.test_case "fallback" `Quick crosstalk_fallback;
        Alcotest.test_case "flagging" `Quick crosstalk_flagging;
        Alcotest.test_case "max ratio" `Quick crosstalk_max_ratio;
        Alcotest.test_case "restrict and merge" `Quick crosstalk_restrict_merge;
      ] );
    ( "device.presets",
      [
        Alcotest.test_case "paper counts" `Quick presets_paper_counts;
        Alcotest.test_case "deterministic" `Quick presets_deterministic;
        Alcotest.test_case "high pairs at 1 hop" `Quick presets_high_pairs_one_hop;
        Alcotest.test_case "regions are lines" `Quick presets_regions_are_lines;
        Alcotest.test_case "by name" `Quick presets_by_name;
      ] );
    ( "device.drift",
      [
        Alcotest.test_case "day0 identity" `Quick drift_day0_identity;
        Alcotest.test_case "deterministic" `Quick drift_deterministic;
        Alcotest.test_case "bounded" `Quick drift_bounded;
        Alcotest.test_case "pair set stable" `Quick drift_pair_set_stable;
      ] );
  ]
