(* Tests for the extension features: crosstalk-aware routing, omega
   auto-tuning, and the Optimization-3 refresh workflow. *)

module Device = Core.Device
module Presets = Core.Presets
module Routing = Core.Routing
module Crosstalk = Core.Crosstalk
module Circuit = Core.Circuit
module Rng = Core.Rng

let pough = Presets.poughkeepsie ()
let truth = Device.ground_truth pough

let risky_edges =
  List.concat_map
    (fun (e1, e2) -> [ e1; e2 ])
    (Device.true_high_crosstalk_pairs pough ~threshold:3.0)

(* ---- crosstalk-aware routing ---- *)

let edges_of path =
  let rec pairs = function
    | a :: (b :: _ as rest) -> Core.Topology.normalize (a, b) :: pairs rest
    | _ -> []
  in
  pairs path

let risky_count path = List.length (List.filter (fun e -> List.mem e risky_edges) (edges_of path))

let aware_path_avoids_flagged_edges () =
  (* 0 -> 13 has two length-5 routes: via 10-11-12 (two risky edges)
     and via 6-7-12 (one risky edge, since (7,12) is itself flagged).
     The default tie-break takes the worse side; the aware router must
     take the side with fewer risky edges. *)
  let default_path = Routing.swap_path_qubits pough ~src:0 ~dst:13 in
  let aware = Routing.crosstalk_aware_path pough ~xtalk:truth ~src:0 ~dst:13 () in
  Alcotest.(check int) "same length" (List.length default_path) (List.length aware);
  Alcotest.(check int) "default path: two risky edges" 2 (risky_count default_path);
  Alcotest.(check int) "aware path: one risky edge" 1 (risky_count aware)

let aware_path_valid () =
  let path = Routing.crosstalk_aware_path pough ~xtalk:truth ~src:4 ~dst:16 () in
  Alcotest.(check int) "endpoints" 4 (List.hd path);
  Alcotest.(check int) "endpoints" 16 (List.nth path (List.length path - 1));
  let topo = Device.topology pough in
  let rec ok = function
    | a :: (b :: _ as rest) -> Core.Topology.has_edge topo (a, b) && ok rest
    | _ -> true
  in
  Alcotest.(check bool) "consecutive edges" true (ok path)

let aware_path_no_xtalk_is_shortest () =
  let aware = Routing.crosstalk_aware_path pough ~xtalk:Crosstalk.empty ~src:0 ~dst:13 () in
  Alcotest.(check int) "shortest length" 6 (List.length aware)

let aware_path_bounded_detour () =
  (* With a large penalty the router may detour, but never by more than
     the penalty justifies; with our default it stays within +1 hop of
     shortest on this device. *)
  let topo = Device.topology pough in
  for src = 0 to 9 do
    let dst = 19 - src in
    if src <> dst then begin
      let shortest = Core.Topology.qubit_distance topo src dst in
      let aware = Routing.crosstalk_aware_path pough ~xtalk:truth ~src ~dst () in
      Alcotest.(check bool) "within one extra hop" true
        (List.length aware - 1 <= shortest + 1)
    end
  done

let build_aware_bell_on_edge () =
  let b = Core.Swap_circuits.build_aware pough ~xtalk:truth ~src:0 ~dst:13 () in
  Alcotest.(check bool) "bell on device edge" true
    (Core.Topology.has_edge (Device.topology pough) b.Core.Swap_circuits.bell);
  (* Still produces a Bell state. *)
  let state, used = Core.Exec.run_ideal b.Core.Swap_circuits.circuit in
  let ba, bb = b.Core.Swap_circuits.bell in
  let ia = Option.get (List.find_index (fun q -> q = ba) used) in
  let ib = Option.get (List.find_index (fun q -> q = bb) used) in
  let rho = Core.State.reduced_density state [ ia; ib ] in
  Alcotest.(check bool) "bell state" true
    (Core.Mat.approx_equal ~tol:1e-9 rho
       (Core.Gates.density_of_state Core.Gates.bell_phi_plus))

(* ---- omega auto-tuning ---- *)

let tune_omega_picks_minimum () =
  let bench = Core.Swap_circuits.build pough ~src:0 ~dst:13 in
  let circuit = Circuit.measure_all bench.Core.Swap_circuits.circuit in
  let candidates = [ 0.0; 0.5; 1.0 ] in
  let omega, sched, _ = Core.Xtalk_sched.tune_omega ~candidates ~device:pough ~xtalk:truth circuit in
  Alcotest.(check bool) "omega from candidates" true (List.mem omega candidates);
  let tuned_err = (Core.Evaluate.model pough ~xtalk:truth sched).Core.Evaluate.error in
  List.iter
    (fun w ->
      let s, _ = Core.Xtalk_sched.schedule ~omega:w ~device:pough ~xtalk:truth circuit in
      let err = (Core.Evaluate.model pough ~xtalk:truth s).Core.Evaluate.error in
      Alcotest.(check bool) (Printf.sprintf "tuned <= w=%.1f" w) true (tuned_err <= err +. 1e-9))
    candidates

let tune_omega_rejects_empty () =
  let bench = Core.Swap_circuits.build pough ~src:5 ~dst:12 in
  let circuit = Circuit.measure_all bench.Core.Swap_circuits.circuit in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Core.Xtalk_sched.tune_omega ~candidates:[] ~device:pough ~xtalk:truth circuit);
       false
     with Invalid_argument _ -> true)

(* ---- Policy.refresh ---- *)

let refresh_updates_flagged_pairs () =
  let rng = Rng.create 91 in
  (* Previous data: ground truth.  Refresh on a drifted day must
     replace the flagged pairs' entries with fresh measurements. *)
  let day = Core.Drift.on_day pough ~day:2 in
  let refreshed = Core.Policy.refresh ~rng day ~previous:truth in
  let flagged = Device.true_high_crosstalk_pairs pough ~threshold:3.0 in
  List.iter
    (fun (e1, e2) ->
      let before = Crosstalk.conditional truth ~target:e1 ~spectator:e2 in
      let after = Crosstalk.conditional refreshed ~target:e1 ~spectator:e2 in
      Alcotest.(check bool) "entry present" true (after <> None);
      Alcotest.(check bool) "entry re-measured" true (after <> before))
    flagged;
  (* Unflagged (weak) entries survive untouched. *)
  let weak_before = Crosstalk.conditional truth ~target:(0, 1) ~spectator:(5, 6) in
  let weak_after = Crosstalk.conditional refreshed ~target:(0, 1) ~spectator:(5, 6) in
  Alcotest.(check bool) "weak entry kept" true (weak_after = weak_before)

let refresh_noop_without_flags () =
  let rng = Rng.create 92 in
  let refreshed = Core.Policy.refresh ~rng pough ~previous:Crosstalk.empty in
  Alcotest.(check int) "still empty" 0 (List.length (Crosstalk.entries refreshed))

let suite =
  [
    ( "extensions.aware-routing",
      [
        Alcotest.test_case "avoids flagged edges" `Quick aware_path_avoids_flagged_edges;
        Alcotest.test_case "valid path" `Quick aware_path_valid;
        Alcotest.test_case "no xtalk = shortest" `Quick aware_path_no_xtalk_is_shortest;
        Alcotest.test_case "bounded detour" `Quick aware_path_bounded_detour;
        Alcotest.test_case "aware bell circuit" `Quick build_aware_bell_on_edge;
      ] );
    ( "extensions.tune-omega",
      [
        Alcotest.test_case "picks minimum" `Quick tune_omega_picks_minimum;
        Alcotest.test_case "rejects empty" `Quick tune_omega_rejects_empty;
      ] );
    ( "extensions.refresh",
      [
        Alcotest.test_case "updates flagged pairs" `Slow refresh_updates_flagged_pairs;
        Alcotest.test_case "noop without flags" `Quick refresh_noop_without_flags;
      ] );
  ]

(* ---- noise-adaptive layout ---- *)

let layout_best_line_avoids_crosstalk () =
  let best = Core.Layout.best_line pough ~xtalk:truth ~length:4 () in
  let worst = Core.Layout.worst_line pough ~xtalk:truth ~length:4 () in
  Alcotest.(check bool) "best scores below worst" true
    (Core.Layout.score_line pough ~xtalk:truth best
    < Core.Layout.score_line pough ~xtalk:truth worst);
  (* the known crosstalk-prone region must score worse than the best *)
  Alcotest.(check bool) "prone region beaten" true
    (Core.Layout.score_line pough ~xtalk:truth best
    < Core.Layout.score_line pough ~xtalk:truth [ 15; 10; 11; 12 ])

let layout_lines_are_connected () =
  let line = Core.Layout.best_line pough ~xtalk:truth ~length:5 () in
  Alcotest.(check int) "five qubits" 5 (List.length line);
  let topo = Device.topology pough in
  let rec ok = function
    | a :: (b :: _ as rest) -> Core.Topology.has_edge topo (a, b) && ok rest
    | _ -> true
  in
  Alcotest.(check bool) "connected" true (ok line)

let layout_place_maps_circuit () =
  let logical = Circuit.cnot (Circuit.h (Circuit.create 2) 0) ~control:0 ~target:1 in
  let region = Core.Layout.best_line pough ~xtalk:truth ~length:2 () in
  let placed = Core.Layout.place logical ~region ~nqubits:20 in
  Alcotest.(check (list int)) "uses region qubits" (List.sort compare region)
    (Circuit.used_qubits placed)

let layout_better_region_better_qaoa () =
  (* QAOA on the best-scoring line vs the paper's crosstalk-prone
     region: the adaptive layout must achieve a lower cross-entropy
     loss under the plain parallel scheduler. *)
  let rng = Rng.create 93 in
  let run region =
    let qaoa = Core.Qaoa.build pough ~rng:(Core.Rng.create 5) ~region in
    let sched = Core.Par_sched.schedule pough qaoa.Core.Qaoa.circuit in
    let measured = Core.Exec.run_distribution pough sched ~rng ~trajectories:300 in
    let ideal_state, _ = Core.Exec.run_ideal qaoa.Core.Qaoa.circuit in
    let ideal = Core.State.probabilities ideal_state in
    Core.Cross_entropy.loss
      ~ideal_entropy:(Core.Cross_entropy.entropy ideal)
      (Core.Cross_entropy.against_ideal ~ideal ~measured)
  in
  let good = run (Core.Layout.best_line pough ~xtalk:truth ~length:4 ()) in
  let prone = run [ 15; 10; 11; 12 ] in
  Alcotest.(check bool)
    (Printf.sprintf "best region loss %.3f < prone region loss %.3f" good prone)
    true (good < prone)

let layout_suite =
  ( "extensions.layout",
    [
      Alcotest.test_case "avoids crosstalk regions" `Quick layout_best_line_avoids_crosstalk;
      Alcotest.test_case "lines connected" `Quick layout_lines_are_connected;
      Alcotest.test_case "place maps circuit" `Quick layout_place_maps_circuit;
      Alcotest.test_case "better region, better qaoa" `Slow layout_better_region_better_qaoa;
    ] )

let suite = suite @ [ layout_suite ]
