test/test_extensions.ml: Alcotest Core List Option Printf
