test/test_persist.ml: Alcotest Core Filename List Result String
