test/test_smt.ml: Alcotest Array Core Float Gen List QCheck QCheck_alcotest
