test/test_benchmarks.ml: Alcotest Core List Option
