test/test_integration.ml: Alcotest Core Float Hashtbl List Printf
