test/test_device.ml: Alcotest Core List
