test/test_density.ml: Alcotest Array Core Float Printf
