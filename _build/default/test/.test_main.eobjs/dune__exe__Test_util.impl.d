test/test_util.ml: Alcotest Array Core Float Gen Hashtbl List Option QCheck QCheck_alcotest String
