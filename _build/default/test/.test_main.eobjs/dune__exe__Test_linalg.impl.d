test/test_linalg.ml: Alcotest Array Core Float Format Gen List Printf QCheck QCheck_alcotest
