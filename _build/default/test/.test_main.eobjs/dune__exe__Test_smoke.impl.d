test/test_smoke.ml: Alcotest Array Core List Printf
