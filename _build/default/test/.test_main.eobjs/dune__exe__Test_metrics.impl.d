test/test_metrics.ml: Alcotest Array Core Float Fun List Printf String
