test/test_circuit.ml: Alcotest Array Core Float List QCheck QCheck_alcotest Result String
