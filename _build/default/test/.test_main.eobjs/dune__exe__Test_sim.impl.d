test/test_sim.ml: Alcotest Core Float List QCheck QCheck_alcotest
