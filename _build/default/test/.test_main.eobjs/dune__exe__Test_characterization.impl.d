test/test_characterization.ml: Alcotest Array Core Float Hashtbl List Printf
