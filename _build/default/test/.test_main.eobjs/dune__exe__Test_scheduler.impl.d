test/test_scheduler.ml: Alcotest Array Core List Printf QCheck QCheck_alcotest Result
