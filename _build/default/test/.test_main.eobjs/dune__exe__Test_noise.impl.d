test/test_noise.ml: Alcotest Array Core Float List Printf
