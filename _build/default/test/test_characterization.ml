(* Tests for qcx_characterization: the Clifford group table, RB/SRB,
   bin packing and the characterization policies. *)

module Clifford2 = Core.Clifford2
module Rb = Core.Rb
module Binpack = Core.Binpack
module Policy = Core.Policy
module Tableau = Core.Tableau
module Rng = Core.Rng
module Topology = Core.Topology

(* ---- Clifford2 ---- *)

let clifford_group_order () =
  Alcotest.(check int) "11520 elements" 11520 (Array.length (Clifford2.table_words ()))

let clifford_class_sizes () =
  let words = Clifford2.table_words () in
  let by_cx = Array.make 4 0 in
  Array.iter (fun w -> by_cx.(Clifford2.cnot_count w) <- by_cx.(Clifford2.cnot_count w) + 1) words;
  Alcotest.(check int) "identity class" 576 by_cx.(0);
  Alcotest.(check int) "cnot class" 5184 by_cx.(1);
  Alcotest.(check int) "iswap class" 5184 by_cx.(2);
  Alcotest.(check int) "swap class" 576 by_cx.(3)

let clifford_average_cnots () =
  Alcotest.(check (float 1e-9)) "1.5 cnots per clifford" 1.5 (Clifford2.average_cnots ())

let clifford_words_distinct () =
  let words = Clifford2.table_words () in
  let keys = Hashtbl.create (2 * Array.length words) in
  Array.iter
    (fun w ->
      let t = Tableau.create 2 in
      Clifford2.apply_word t w;
      let k = Tableau.key t in
      Alcotest.(check bool) "no duplicate element" false (Hashtbl.mem keys k);
      Hashtbl.add keys k ())
    words

let clifford_inverse_property () =
  let rng = Rng.create 21 in
  for _ = 1 to 200 do
    let t = Tableau.create 2 in
    for _ = 1 to 1 + Rng.int rng 8 do
      Clifford2.apply_word t (Clifford2.sample rng)
    done;
    let inv = Clifford2.inverse_word t in
    Clifford2.apply_word t inv;
    Alcotest.(check bool) "inverse returns to identity" true (Tableau.is_identity t)
  done

let clifford_inverse_is_canonical () =
  (* The inverse word must itself be a representative (bounded CNOTs),
     not the reversed full sequence. *)
  let rng = Rng.create 22 in
  let t = Tableau.create 2 in
  for _ = 1 to 20 do
    Clifford2.apply_word t (Clifford2.sample rng)
  done;
  let inv = Clifford2.inverse_word t in
  Alcotest.(check bool) "at most 3 CNOTs" true (Clifford2.cnot_count inv <= 3)

let clifford_naive_inverse () =
  let rng = Rng.create 23 in
  let words = List.init 5 (fun _ -> Clifford2.sample rng) in
  let t = Tableau.create 2 in
  List.iter (Clifford2.apply_word t) words;
  Clifford2.apply_word t (Clifford2.naive_inverse words);
  Alcotest.(check bool) "naive inverse works" true (Tableau.is_identity t)

let clifford_invert_gate () =
  Alcotest.(check bool) "S <-> Sdg" true
    (Clifford2.invert_gate (Clifford2.S 0) = Clifford2.Sdg 0
    && Clifford2.invert_gate (Clifford2.Sdg 1) = Clifford2.S 1
    && Clifford2.invert_gate (Clifford2.H 0) = Clifford2.H 0)

(* ---- Rb ---- *)

let rb_measures_calibrated_error () =
  let device = Core.Presets.linear 4 in
  let rng = Rng.create 24 in
  let fit = Rb.independent device ~rng ~params:Rb.default_params (1, 2) in
  let cal = Core.Device.cnot_error device (1, 2) in
  Alcotest.(check bool) "alpha in (0,1)" true (fit.Rb.alpha > 0.0 && fit.Rb.alpha < 1.0);
  Alcotest.(check bool)
    (Printf.sprintf "measured %.4f within [0.5x, 4x] of %.4f" fit.Rb.error_rate cal)
    true
    (fit.Rb.error_rate > 0.5 *. cal && fit.Rb.error_rate < 4.0 *. cal)

let rb_distinguishes_noisy_gate () =
  (* Double one gate's error: its RB estimate must exceed a clean
     gate's. *)
  let device = Core.Presets.linear 6 in
  let cal = Core.Device.calibration device in
  let g = Core.Calibration.gate cal (0, 1) in
  let noisy =
    Core.Device.with_calibration device
      (Core.Calibration.with_gate cal (0, 1) { g with Core.Calibration.cnot_error = 0.06 })
  in
  let rng = Rng.create 25 in
  let f_noisy = Rb.independent noisy ~rng ~params:Rb.default_params (0, 1) in
  let f_clean = Rb.independent noisy ~rng ~params:Rb.default_params (3, 4) in
  Alcotest.(check bool) "noisy gate measured worse" true
    (f_noisy.Rb.error_rate > 2.0 *. f_clean.Rb.error_rate)

let rb_rejects_overlapping_edges () =
  let device = Core.Presets.linear 4 in
  let rng = Rng.create 26 in
  Alcotest.(check bool) "shared qubit rejected" true
    (try
       ignore (Rb.run device ~rng ~params:Rb.default_params [ (0, 1); (1, 2) ]);
       false
     with Invalid_argument _ -> true)

let rb_experiment_executions () =
  Alcotest.(check int) "count"
    (List.length Rb.default_params.Rb.lengths * Rb.default_params.Rb.seeds
   * Rb.default_params.Rb.trials)
    (Rb.experiment_executions Rb.default_params)

(* ---- Binpack ---- *)

let binpack_partition_complete () =
  let device = Core.Presets.poughkeepsie () in
  let topo = Core.Device.topology device in
  let pairs = Topology.one_hop_gate_pairs topo in
  let rng = Rng.create 27 in
  let bins = Binpack.pack topo ~rng ~min_separation:2 ~attempts:8 pairs in
  let flattened = List.concat bins in
  Alcotest.(check int) "every pair placed once" (List.length pairs) (List.length flattened);
  List.iter
    (fun p -> Alcotest.(check bool) "pair present" true (List.mem p flattened))
    pairs

let binpack_bins_valid () =
  let device = Core.Presets.poughkeepsie () in
  let topo = Core.Device.topology device in
  let pairs = Topology.one_hop_gate_pairs topo in
  let rng = Rng.create 28 in
  let bins = Binpack.pack topo ~rng ~min_separation:2 ~attempts:8 pairs in
  List.iter
    (fun bin ->
      let rec mutual = function
        | [] -> ()
        | p :: rest ->
          List.iter
            (fun q ->
              Alcotest.(check bool) "pairs mutually compatible" true
                (Binpack.compatible topo ~min_separation:2 p q))
            rest;
          mutual rest
      in
      mutual bin)
    bins

let binpack_parallelizes () =
  let device = Core.Presets.poughkeepsie () in
  let topo = Core.Device.topology device in
  let pairs = Topology.one_hop_gate_pairs topo in
  let rng = Rng.create 29 in
  let bins = Binpack.pack topo ~rng ~min_separation:2 ~attempts:16 pairs in
  Alcotest.(check bool)
    (Printf.sprintf "%d pairs in %d bins" (List.length pairs) (List.length bins))
    true
    (List.length bins * 3 < List.length pairs * 2)

let binpack_compatibility_semantics () =
  let device = Core.Presets.poughkeepsie () in
  let topo = Core.Device.topology device in
  Alcotest.(check bool) "adjacent pairs incompatible" false
    (Binpack.compatible topo ~min_separation:2 ((0, 1), (2, 3)) ((5, 6), (7, 8)));
  Alcotest.(check bool) "distant pairs compatible" true
    (Binpack.compatible topo ~min_separation:2 ((0, 1), (2, 3)) ((15, 16), (17, 18)))

(* ---- Policy ---- *)

let policy_plan_counts () =
  let device = Core.Presets.poughkeepsie () in
  let rng = Rng.create 30 in
  let all = Policy.plan ~rng device Policy.All_pairs in
  let hop = Policy.plan ~rng device Policy.One_hop in
  let packed = Policy.plan ~rng device Policy.One_hop_binpacked in
  Alcotest.(check int) "all pairs" 221 (Policy.experiment_count all);
  Alcotest.(check int) "one hop" 44 (Policy.experiment_count hop);
  Alcotest.(check bool) "binpacked smaller" true
    (Policy.experiment_count packed < Policy.experiment_count hop)

let policy_estimated_hours () =
  let device = Core.Presets.poughkeepsie () in
  let rng = Rng.create 31 in
  let all = Policy.plan ~rng device Policy.All_pairs in
  let h = Policy.estimated_hours all in
  (* The paper's "over 8 hours" for 221 x 100 x 1024 executions. *)
  Alcotest.(check bool) (Printf.sprintf "%.2f hours near 8" h) true (h > 7.0 && h < 9.0)

let policy_characterize_detects_truth () =
  (* Characterize only the flagship pair and verify direction-resolved
     detection. *)
  let device = Core.Presets.poughkeepsie () in
  let rng = Rng.create 32 in
  let plan = Policy.plan ~rng device (Policy.High_crosstalk_only [ ((10, 15), (11, 12)) ]) in
  let outcome = Policy.characterize ~rng device plan in
  let flagged = Policy.high_pairs_of_outcome device outcome in
  Alcotest.(check bool) "flagship pair detected" true
    (List.mem ((10, 15), (11, 12)) flagged);
  (* measurements carry both directions *)
  Alcotest.(check int) "two directed measurements" 2
    (List.length outcome.Policy.measurements)

let suite =
  [
    ( "characterization.clifford2",
      [
        Alcotest.test_case "group order" `Quick clifford_group_order;
        Alcotest.test_case "class sizes" `Quick clifford_class_sizes;
        Alcotest.test_case "average cnots" `Quick clifford_average_cnots;
        Alcotest.test_case "words distinct" `Slow clifford_words_distinct;
        Alcotest.test_case "inverse property" `Quick clifford_inverse_property;
        Alcotest.test_case "inverse canonical" `Quick clifford_inverse_is_canonical;
        Alcotest.test_case "naive inverse" `Quick clifford_naive_inverse;
        Alcotest.test_case "invert gate" `Quick clifford_invert_gate;
      ] );
    ( "characterization.rb",
      [
        Alcotest.test_case "measures calibrated error" `Slow rb_measures_calibrated_error;
        Alcotest.test_case "distinguishes noisy gate" `Slow rb_distinguishes_noisy_gate;
        Alcotest.test_case "rejects overlapping edges" `Quick rb_rejects_overlapping_edges;
        Alcotest.test_case "experiment executions" `Quick rb_experiment_executions;
      ] );
    ( "characterization.binpack",
      [
        Alcotest.test_case "partition complete" `Quick binpack_partition_complete;
        Alcotest.test_case "bins valid" `Quick binpack_bins_valid;
        Alcotest.test_case "parallelizes" `Quick binpack_parallelizes;
        Alcotest.test_case "compatibility semantics" `Quick binpack_compatibility_semantics;
      ] );
    ( "characterization.policy",
      [
        Alcotest.test_case "plan counts" `Quick policy_plan_counts;
        Alcotest.test_case "estimated hours" `Quick policy_estimated_hours;
        Alcotest.test_case "detects ground truth" `Slow policy_characterize_detects_truth;
      ] );
  ]

(* ---- Clifford1 / single-qubit RB (appended suite) ---- *)

let clifford1_group_order () =
  Alcotest.(check int) "24 elements" 24 (Array.length (Core.Clifford1.table_words ()))

let clifford1_inverse_property () =
  let rng = Rng.create 33 in
  for _ = 1 to 100 do
    let t = Tableau.create 1 in
    for _ = 1 to 1 + Rng.int rng 6 do
      Core.Clifford1.apply_word t ~qubit:0 (Core.Clifford1.sample rng)
    done;
    Core.Clifford1.apply_word t ~qubit:0 (Core.Clifford1.inverse_word t);
    Alcotest.(check bool) "returns to identity" true (Tableau.is_identity t)
  done

let clifford1_words_short () =
  Array.iter
    (fun w -> Alcotest.(check bool) "word length bounded" true (List.length w <= 6))
    (Core.Clifford1.table_words ())

let rb_single_qubit_small_errors () =
  (* 1q error rates on the presets are ~10x below CNOT rates; RB must
     confirm the hierarchy the paper's model relies on. *)
  let device = Core.Presets.linear 4 in
  let rng = Rng.create 34 in
  let fits = Core.Rb.run_single device ~rng ~params:Core.Rb.default_params [ 1; 2 ] in
  Alcotest.(check int) "two fits" 2 (List.length fits);
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (Printf.sprintf "q%d gate error %.5f below 1%%" f.Core.Rb.qubit f.Core.Rb.gate_error)
        true
        (f.Core.Rb.gate_error < 0.01);
      Alcotest.(check bool) "well below the CNOT rate" true
        (f.Core.Rb.gate_error < Core.Device.cnot_error device (1, 2)))
    fits

let rb_single_rejects_duplicates () =
  let device = Core.Presets.linear 4 in
  let rng = Rng.create 35 in
  Alcotest.(check bool) "duplicates rejected" true
    (try
       ignore (Core.Rb.run_single device ~rng ~params:Core.Rb.default_params [ 1; 1 ]);
       false
     with Invalid_argument _ -> true)

let clifford1_suite =
  ( "characterization.clifford1",
    [
      Alcotest.test_case "group order" `Quick clifford1_group_order;
      Alcotest.test_case "inverse property" `Quick clifford1_inverse_property;
      Alcotest.test_case "words short" `Quick clifford1_words_short;
      Alcotest.test_case "single-qubit rb" `Slow rb_single_qubit_small_errors;
      Alcotest.test_case "rejects duplicates" `Quick rb_single_rejects_duplicates;
    ] )

let suite = suite @ [ clifford1_suite ]

(* ---- interleaved RB ---- *)

let interleaved_rb_isolates_gate () =
  (* A deliberately bad gate on an otherwise clean device: IRB must
     pin the blame on it. *)
  let device = Core.Presets.linear 4 in
  let cal = Core.Device.calibration device in
  let g = Core.Calibration.gate cal (1, 2) in
  let noisy =
    Core.Device.with_calibration device
      (Core.Calibration.with_gate cal (1, 2) { g with Core.Calibration.cnot_error = 0.05 })
  in
  let rng = Rng.create 36 in
  let r = Core.Rb.interleaved noisy ~rng ~params:Core.Rb.default_params (1, 2) in
  Alcotest.(check bool) "interleaved decays faster" true
    (r.Core.Rb.interleaved.Core.Rb.alpha < r.Core.Rb.standard.Core.Rb.alpha);
  Alcotest.(check bool)
    (Printf.sprintf "gate error %.4f within 2.5x of 0.05" r.Core.Rb.gate_error)
    true
    (r.Core.Rb.gate_error > 0.02 && r.Core.Rb.gate_error < 0.125)

let interleaved_agrees_with_standard_estimate () =
  let device = Core.Presets.linear 4 in
  let rng = Rng.create 37 in
  let irb = Core.Rb.interleaved device ~rng ~params:Core.Rb.default_params (1, 2) in
  let std = Core.Rb.independent device ~rng ~params:Core.Rb.default_params (1, 2) in
  (* Both estimate the same 1.5% gate; IRB subtracts the idle floor so
     it may sit lower, but they must agree within a small factor. *)
  Alcotest.(check bool)
    (Printf.sprintf "irb %.4f vs rb %.4f comparable" irb.Core.Rb.gate_error std.Core.Rb.error_rate)
    true
    (irb.Core.Rb.gate_error < 3.0 *. std.Core.Rb.error_rate
    && std.Core.Rb.error_rate < 6.0 *. Float.max 0.004 irb.Core.Rb.gate_error)

let irb_suite =
  ( "characterization.interleaved-rb",
    [
      Alcotest.test_case "isolates a bad gate" `Slow interleaved_rb_isolates_gate;
      Alcotest.test_case "agrees with standard rb" `Slow interleaved_agrees_with_standard_estimate;
    ] )

let suite = suite @ [ irb_suite ]
