(* End-to-end smoke checks: the whole pipeline on real presets. *)

let check_float = Alcotest.(check (float 1e-9))

let clifford_table_size () =
  Alcotest.(check int) "group order" 11520 (Array.length (Core.Clifford2.table_words ()));
  check_float "average CNOTs" 1.5 (Core.Clifford2.average_cnots ())

let rb_roundtrip () =
  (* On a crosstalk-free linear device, RB should measure an error
     rate at least the calibration CNOT error and within a small
     multiple of it (idle decoherence inflates the estimate). *)
  let device = Core.Presets.linear 4 in
  let rng = Core.Rng.create 11 in
  let fit = Core.Rb.independent device ~rng ~params:Core.Rb.default_params (1, 2) in
  let calibrated = Core.Device.cnot_error device (1, 2) in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.4f >= calibrated %.4f" fit.Core.Rb.error_rate calibrated)
    true
    (fit.Core.Rb.error_rate >= 0.5 *. calibrated);
  Alcotest.(check bool)
    (Printf.sprintf "measured %.4f within 4x of calibrated %.4f" fit.Core.Rb.error_rate calibrated)
    true
    (fit.Core.Rb.error_rate <= 4.0 *. calibrated)

let srb_detects_flagship_pair () =
  (* SRB on Poughkeepsie's (10,15)|(11,12) pair must report a much
     higher conditional than independent rate. *)
  let device = Core.Presets.poughkeepsie () in
  let rng = Core.Rng.create 23 in
  let params = Core.Rb.default_params in
  let fits = Core.Rb.run device ~rng ~params [ (10, 15); (11, 12) ] in
  let conditional = (List.nth fits 0).Core.Rb.error_rate in
  let independent =
    (Core.Rb.independent device ~rng ~params (10, 15)).Core.Rb.error_rate
  in
  Alcotest.(check bool)
    (Printf.sprintf "conditional %.4f > 2.5x independent %.4f" conditional independent)
    true
    (conditional > 2.5 *. independent)

let xtalksched_beats_parsched_oracle () =
  (* Oracle (analytic) error of the Fig. 6 SWAP path: XtalkSched at
     omega 0.5 should beat both baselines given true crosstalk data. *)
  let device = Core.Presets.poughkeepsie () in
  let bench = Core.Swap_circuits.build device ~src:0 ~dst:13 in
  let circuit = Core.Circuit.measure_all bench.Core.Swap_circuits.circuit in
  let xtalk = Core.Device.ground_truth device in
  let par, _ = Core.Pipeline.compile ~scheduler:Core.Par_sched device ~xtalk circuit in
  let serial, _ = Core.Pipeline.compile ~scheduler:Core.Serial_sched device ~xtalk circuit in
  let xs, stats = Core.Pipeline.compile ~scheduler:(Core.Xtalk_sched 0.5) device ~xtalk circuit in
  (match stats with
  | Some s -> Alcotest.(check bool) "solver proved optimality" true s.Core.Xtalk_sched.optimal
  | None -> Alcotest.fail "expected stats");
  let err sched = (Core.Evaluate.oracle device sched).Core.Evaluate.error in
  let ep = err par and es = err serial and ex = err xs in
  Alcotest.(check bool)
    (Printf.sprintf "xtalk %.4f < par %.4f" ex ep)
    true (ex < ep);
  Alcotest.(check bool)
    (Printf.sprintf "xtalk %.4f < serial %.4f" ex es)
    true (ex < es)

let pipeline_end_to_end () =
  (* Characterize a small plan, compile, execute; just exercise the
     whole path without asserting tight numbers. *)
  let device = Core.Presets.poughkeepsie () in
  let rng = Core.Rng.create 5 in
  let plan =
    Core.Policy.plan ~rng device
      (Core.Policy.High_crosstalk_only [ ((10, 15), (11, 12)) ])
  in
  let outcome = Core.Policy.characterize ~rng device plan in
  let bench = Core.Swap_circuits.build device ~src:5 ~dst:12 in
  let circuit = Core.Circuit.measure_all bench.Core.Swap_circuits.circuit in
  let sched, _ =
    Core.Pipeline.compile device ~xtalk:outcome.Core.Policy.xtalk circuit
  in
  let counts = Core.Pipeline.execute device sched ~rng ~trials:64 in
  Alcotest.(check int) "all trials counted" 64 (Core.Exec.counts_total counts)

let suite =
  [
    ( "smoke",
      [
        Alcotest.test_case "clifford2 table" `Quick clifford_table_size;
        Alcotest.test_case "rb roundtrip" `Slow rb_roundtrip;
        Alcotest.test_case "srb detects crosstalk" `Slow srb_detects_flagship_pair;
        Alcotest.test_case "xtalksched beats baselines (oracle)" `Quick
          xtalksched_beats_parsched_oracle;
        Alcotest.test_case "pipeline end to end" `Slow pipeline_end_to_end;
      ] );
  ]
