lib/smt/dgraph.mli:
