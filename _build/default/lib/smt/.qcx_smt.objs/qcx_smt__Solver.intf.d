lib/smt/solver.mli:
