lib/smt/dgraph.ml: Array
