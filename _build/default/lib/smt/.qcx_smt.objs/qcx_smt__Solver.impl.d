lib/smt/solver.ml: Array Dgraph Fun Hashtbl List Option
