(** Least-squares curve fitting for randomized-benchmarking decays.

    RB survival data follows [y = a * alpha^m + b] where [m] is the
    Clifford sequence length.  For a fixed [alpha] the model is linear
    in [(a, b)], so we solve the inner problem in closed form and
    search the outer 1-D problem over [alpha] in (0, 1) by golden
    section on the residual sum of squares. *)

type decay = {
  a : float;  (** amplitude *)
  alpha : float;  (** depolarizing decay parameter per Clifford *)
  b : float;  (** asymptote *)
  sse : float;  (** residual sum of squares at the optimum *)
}

val linear : (float * float) list -> float * float
(** [linear pts] fits [y = slope * x + intercept]; returns
    [(slope, intercept)].  Needs at least two distinct x values. *)

val exp_decay : (float * float) list -> decay
(** [exp_decay pts] fits [y = a * alpha^m + b] over points
    [(m, y)].  Needs at least three points. *)

val exp_decay_fixed_b : b:float -> (float * float) list -> decay
(** Fit [y = a * alpha^m + b] with the asymptote pinned (for
    randomized benchmarking, [b = 1/2^n] — the fully depolarized
    survival, which readout bit flips leave unchanged).  Weighted
    log-linear regression of [ln (y - b)] against [m], with
    delta-method weights [(y-b)^2] so near-floor points do not blow up
    the fit; points at or below the floor are dropped.  Much more
    stable than the free fit when the decay is fast (high-crosstalk
    SRB curves that collapse within a few Cliffords). *)

val epc_of_alpha : nqubits:int -> float -> float
(** Error per Clifford from the decay parameter:
    [(2^n - 1) / 2^n * (1 - alpha)] (Magesan et al., 2012). *)

val cnot_error_of_epc : cnots_per_clifford:float -> float -> float
(** CNOT error upper bound: error per Clifford divided by the average
    number of CNOTs per two-qubit Clifford (1.5 for optimal
    decompositions), as in the paper's §8.1. *)
