lib/util/stats.mli:
