lib/util/rng.mli:
