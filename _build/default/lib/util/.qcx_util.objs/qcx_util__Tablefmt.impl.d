lib/util/tablefmt.ml: Array List Printf String
