lib/util/fit.ml: Float List Stats
