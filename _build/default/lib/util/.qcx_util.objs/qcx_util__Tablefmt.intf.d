lib/util/tablefmt.mli:
