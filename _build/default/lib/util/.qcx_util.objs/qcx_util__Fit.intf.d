lib/util/fit.mli:
