(** Plain-text table rendering for the benchmark harness.

    The bench executable reproduces the paper's tables and figure data
    as aligned ASCII tables; this module does the column bookkeeping. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row.  Rows may be shorter than the header (padded). *)

val render : t -> string
(** Render with aligned columns and a header separator. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val fl : ?decimals:int -> float -> string
(** Format a float with a fixed number of decimals (default 4). *)

val section : string -> unit
(** Print a visually distinct section banner to stdout. *)
