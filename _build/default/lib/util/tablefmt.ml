type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t row = t.rows <- row :: t.rows

let pad_to n row =
  let len = List.length row in
  if len >= n then row else row @ List.init (n - len) (fun _ -> "")

let render t =
  let ncols = List.length t.headers in
  let rows = List.rev_map (pad_to ncols) t.rows in
  let all = t.headers :: rows in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun i cell -> cell ^ String.make (widths.(i) - String.length cell) ' ')
         row)
  in
  let sep = String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)) in
  String.concat "\n" (render_row t.headers :: sep :: List.map render_row rows)

let print t =
  print_string (render t);
  print_newline ()

let fl ?(decimals = 4) x = Printf.sprintf "%.*f" decimals x

let section title =
  let bar = String.make (String.length title + 8) '=' in
  Printf.printf "\n%s\n=== %s ===\n%s\n" bar title bar
