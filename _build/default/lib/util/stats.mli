(** Small descriptive-statistics helpers used across the repository. *)

val mean : float list -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty list. *)

val variance : float list -> float
(** Sample variance (Bessel-corrected); [0.] for fewer than two points. *)

val std : float list -> float
(** Sample standard deviation. *)

val geomean : float list -> float
(** Geometric mean of positive values. *)

val median : float list -> float
(** Median (average of middle two for even length). *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], linear interpolation. *)

val minimum : float list -> float
val maximum : float list -> float

val sum : float list -> float

val clamp : lo:float -> hi:float -> float -> float
(** Clamp a value into [lo, hi]. *)

val ratio_summary : (float * float) list -> float * float
(** [ratio_summary pairs] where each pair is (baseline, candidate):
    returns (geomean improvement, max improvement) of baseline /
    candidate — the paper's "geomean 2x, up to 5.6x" style summary. *)
