let sum = List.fold_left ( +. ) 0.0

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty list"
  | _ -> sum xs /. float_of_int (List.length xs)

let variance xs =
  let n = List.length xs in
  if n < 2 then 0.0
  else
    let m = mean xs in
    let sq = sum (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sq /. float_of_int (n - 1)

let std xs = sqrt (variance xs)

let geomean xs =
  match xs with
  | [] -> invalid_arg "Stats.geomean: empty list"
  | _ ->
    List.iter (fun x -> if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value") xs;
    exp (sum (List.map log xs) /. float_of_int (List.length xs))

let sorted xs = List.sort compare xs

let median xs =
  match xs with
  | [] -> invalid_arg "Stats.median: empty list"
  | _ ->
    let arr = Array.of_list (sorted xs) in
    let n = Array.length arr in
    if n mod 2 = 1 then arr.(n / 2) else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let percentile p xs =
  match xs with
  | [] -> invalid_arg "Stats.percentile: empty list"
  | _ ->
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
    let arr = Array.of_list (sorted xs) in
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else
      let rank = p /. 100.0 *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1.0 -. frac)) +. (arr.(hi) *. frac)

let minimum xs =
  match xs with
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: rest -> List.fold_left min x rest

let maximum xs =
  match xs with
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: rest -> List.fold_left max x rest

let clamp ~lo ~hi x = if x < lo then lo else if x > hi then hi else x

let ratio_summary pairs =
  match pairs with
  | [] -> invalid_arg "Stats.ratio_summary: empty list"
  | _ ->
    let ratios =
      List.map
        (fun (baseline, candidate) ->
          if candidate <= 0.0 then invalid_arg "Stats.ratio_summary: non-positive candidate"
          else baseline /. candidate)
        pairs
    in
    (geomean ratios, maximum ratios)
