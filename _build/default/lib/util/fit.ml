type decay = { a : float; alpha : float; b : float; sse : float }

let linear pts =
  let n = float_of_int (List.length pts) in
  if List.length pts < 2 then invalid_arg "Fit.linear: need at least two points";
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 pts in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 pts in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 pts in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Fit.linear: degenerate x values";
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. n in
  (slope, intercept)

(* For fixed alpha, minimize sum (a * alpha^m + b - y)^2 over (a, b):
   an ordinary 2x2 normal-equation solve with basis (alpha^m, 1). *)
let solve_ab pts alpha =
  let n = float_of_int (List.length pts) in
  let su = List.fold_left (fun acc (m, _) -> acc +. (alpha ** m)) 0.0 pts in
  let suu = List.fold_left (fun acc (m, _) -> acc +. (alpha ** (2.0 *. m))) 0.0 pts in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 pts in
  let suy = List.fold_left (fun acc (m, y) -> acc +. ((alpha ** m) *. y)) 0.0 pts in
  let denom = (suu *. n) -. (su *. su) in
  let a, b =
    if Float.abs denom < 1e-12 then (0.0, sy /. n)
    else
      let a = ((suy *. n) -. (su *. sy)) /. denom in
      let b = (sy -. (a *. su)) /. n in
      (a, b)
  in
  let sse =
    List.fold_left
      (fun acc (m, y) ->
        let r = (a *. (alpha ** m)) +. b -. y in
        acc +. (r *. r))
      0.0 pts
  in
  (a, b, sse)

let exp_decay pts =
  if List.length pts < 3 then invalid_arg "Fit.exp_decay: need at least three points";
  let sse_at alpha =
    let _, _, sse = solve_ab pts alpha in
    sse
  in
  (* Coarse scan to find a bracketing region, then golden section. *)
  let best = ref (0.5, sse_at 0.5) in
  for i = 1 to 99 do
    let alpha = float_of_int i /. 100.0 in
    let sse = sse_at alpha in
    if sse < snd !best then best := (alpha, sse)
  done;
  let center = fst !best in
  let lo = ref (Stats.clamp ~lo:1e-6 ~hi:1.0 (center -. 0.02)) in
  let hi = ref (Stats.clamp ~lo:0.0 ~hi:(1.0 -. 1e-9) (center +. 0.02)) in
  let phi = (sqrt 5.0 -. 1.0) /. 2.0 in
  for _ = 1 to 60 do
    let x1 = !hi -. (phi *. (!hi -. !lo)) in
    let x2 = !lo +. (phi *. (!hi -. !lo)) in
    if sse_at x1 < sse_at x2 then hi := x2 else lo := x1
  done;
  let alpha = (!lo +. !hi) /. 2.0 in
  let a, b, sse = solve_ab pts alpha in
  { a; alpha; b; sse }

let exp_decay_fixed_b ~b pts =
  if List.length pts < 2 then invalid_arg "Fit.exp_decay_fixed_b: need at least two points";
  let usable = List.filter (fun (_, y) -> y -. b > 1e-3) pts in
  match usable with
  | [] | [ _ ] ->
    (* Everything at the floor: maximal decay. *)
    { a = 1.0 -. b; alpha = 0.0; b; sse = 0.0 }
  | _ ->
    (* Weighted least squares on ln(y - b) = ln a + m ln alpha. *)
    let sw = ref 0.0 and swx = ref 0.0 and swy = ref 0.0 and swxx = ref 0.0 and swxy = ref 0.0 in
    List.iter
      (fun (m, y) ->
        let z = y -. b in
        let w = z *. z in
        let ly = log z in
        sw := !sw +. w;
        swx := !swx +. (w *. m);
        swy := !swy +. (w *. ly);
        swxx := !swxx +. (w *. m *. m);
        swxy := !swxy +. (w *. m *. ly))
      usable;
    let denom = (!sw *. !swxx) -. (!swx *. !swx) in
    if Float.abs denom < 1e-12 then { a = 1.0 -. b; alpha = 0.0; b; sse = 0.0 }
    else begin
      let slope = ((!sw *. !swxy) -. (!swx *. !swy)) /. denom in
      let intercept = (!swy -. (slope *. !swx)) /. !sw in
      let alpha = Stats.clamp ~lo:0.0 ~hi:1.0 (exp slope) in
      let a = exp intercept in
      let sse =
        List.fold_left
          (fun acc (m, y) ->
            let r = (a *. (alpha ** m)) +. b -. y in
            acc +. (r *. r))
          0.0 pts
      in
      { a; alpha; b; sse }
    end

let epc_of_alpha ~nqubits alpha =
  let d = float_of_int (1 lsl nqubits) in
  (d -. 1.0) /. d *. (1.0 -. alpha)

let cnot_error_of_epc ~cnots_per_clifford epc =
  if cnots_per_clifford <= 0.0 then invalid_arg "Fit.cnot_error_of_epc: bad divisor";
  epc /. cnots_per_clifford
