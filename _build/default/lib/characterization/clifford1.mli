(** The single-qubit Clifford group (24 elements).

    Same construction as {!Clifford2}: a BFS closure over 1-qubit
    tableaus under {H, S, Sdg} gives a canonical shortest word per
    element, uniform sampling, and exact inverses — the machinery for
    single-qubit randomized benchmarking.  The paper only needs 1q
    error rates to argue they are negligible next to CNOT errors
    (Section 7.2); [Rb.run_single] measures them so that claim can be
    checked rather than assumed. *)

type gate = H | S | Sdg

type word = gate list

val size : int
(** 24. *)

val table_words : unit -> word array
val sample : Qcx_util.Rng.t -> word

val apply_word : Qcx_stabilizer.Tableau.t -> qubit:int -> word -> unit
(** Apply to any tableau at the given qubit. *)

val inverse_word : Qcx_stabilizer.Tableau.t -> word
(** For a 1-qubit tableau tracking the accumulated Clifford. *)

val average_gates : unit -> float
(** Mean word length over the group. *)
