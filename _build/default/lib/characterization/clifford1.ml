module Tableau = Qcx_stabilizer.Tableau
module Rng = Qcx_util.Rng

type gate = H | S | Sdg

type word = gate list

let size = 24

let apply_gate t ~qubit = function
  | H -> Tableau.h t qubit
  | S -> Tableau.s t qubit
  | Sdg -> Tableau.sdg t qubit

let apply_word t ~qubit w = List.iter (apply_gate t ~qubit) w

let invert_gate = function H -> H | S -> Sdg | Sdg -> S

let build_table () =
  let table : (string, word) Hashtbl.t = Hashtbl.create 64 in
  let words = ref [] in
  let identity = Tableau.create 1 in
  Hashtbl.add table (Tableau.key identity) [];
  words := [ [] ];
  let queue = Queue.create () in
  Queue.add [] queue;
  while not (Queue.is_empty queue) do
    let w = Queue.pop queue in
    List.iter
      (fun g ->
        let t = Tableau.create 1 in
        apply_word t ~qubit:0 (w @ [ g ]);
        let k = Tableau.key t in
        if not (Hashtbl.mem table k) then begin
          let w' = w @ [ g ] in
          Hashtbl.add table k w';
          words := w' :: !words;
          Queue.add w' queue
        end)
      [ H; S; Sdg ]
  done;
  assert (Hashtbl.length table = size);
  (Array.of_list (List.rev !words), table)

let cache = lazy (build_table ())

let table_words () = fst (Lazy.force cache)

let sample rng =
  let words = table_words () in
  words.(Rng.int rng (Array.length words))

let inverse_word t =
  if Tableau.nqubits t <> 1 then invalid_arg "Clifford1.inverse_word: need a 1-qubit tableau";
  let _, table = Lazy.force cache in
  match Hashtbl.find_opt table (Tableau.key t) with
  | None -> invalid_arg "Clifford1.inverse_word: tableau not in the group"
  | Some w ->
    (* The reversed-and-inverted word undoes the element; return the
       inverse element's canonical representative so word lengths stay
       bounded. *)
    let inv = List.rev_map invert_gate w in
    let ti = Tableau.create 1 in
    apply_word ti ~qubit:0 inv;
    (match Hashtbl.find_opt table (Tableau.key ti) with
    | Some canonical -> canonical
    | None -> inv)

let average_gates () =
  let words = table_words () in
  let total = Array.fold_left (fun acc w -> acc + List.length w) 0 words in
  float_of_int total /. float_of_int (Array.length words)
