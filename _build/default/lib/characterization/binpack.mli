(** Randomized first-fit bin packing of SRB experiments —
    characterization Optimization 2 (Section 5.2).

    Two SRB gate pairs can share one experiment when every gate of one
    is at least [min_separation] hops from every gate of the other (the
    paper uses 2, justified by the 1-hop locality of crosstalk).  The
    heuristic iterates over the gate pairs, placing each in the first
    compatible bin; the pair order is shuffled across [attempts]
    restarts and the best (fewest-bin) packing wins. *)

type pair = Qcx_device.Topology.edge * Qcx_device.Topology.edge

val compatible :
  Qcx_device.Topology.t -> min_separation:int -> pair -> pair -> bool
(** All four cross-gate distances at least [min_separation] (gates
    within a pair are exempt — they are the experiment). *)

val pack :
  Qcx_device.Topology.t ->
  rng:Qcx_util.Rng.t ->
  min_separation:int ->
  attempts:int ->
  pair list ->
  pair list list
(** Partition into bins (experiments).  Every input pair appears in
    exactly one bin; pairs within a bin are mutually compatible. *)
