module Topology = Qcx_device.Topology
module Rng = Qcx_util.Rng

type pair = Topology.edge * Topology.edge

let compatible topo ~min_separation (a1, a2) (b1, b2) =
  let far x y = Topology.gate_distance topo x y >= min_separation in
  far a1 b1 && far a1 b2 && far a2 b1 && far a2 b2

let first_fit topo ~min_separation pairs =
  List.fold_left
    (fun bins pair ->
      let rec place = function
        | [] -> [ [ pair ] ]
        | bin :: rest ->
          if List.for_all (compatible topo ~min_separation pair) bin then (pair :: bin) :: rest
          else bin :: place rest
      in
      place bins)
    [] pairs

let pack topo ~rng ~min_separation ~attempts pairs =
  if attempts <= 0 then invalid_arg "Binpack.pack: attempts must be positive";
  let best = ref (first_fit topo ~min_separation pairs) in
  for _ = 2 to attempts do
    let shuffled = Rng.shuffle_list rng pairs in
    let candidate = first_fit topo ~min_separation shuffled in
    if List.length candidate < List.length !best then best := candidate
  done;
  !best
