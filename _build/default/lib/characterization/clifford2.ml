module Tableau = Qcx_stabilizer.Tableau
module Rng = Qcx_util.Rng

type gate = H of int | S of int | Sdg of int | Cx of int * int

type word = gate list

let size = 11520

let apply_gate t = function
  | H q -> Tableau.h t q
  | S q -> Tableau.s t q
  | Sdg q -> Tableau.sdg t q
  | Cx (c, tg) -> Tableau.cnot t ~control:c ~target:tg

let apply_word t w = List.iter (apply_gate t) w

let invert_gate = function
  | H q -> H q
  | S q -> Sdg q
  | Sdg q -> S q
  | Cx (c, t) -> Cx (c, t)

let invert_word w = List.rev_map invert_gate w

let naive_inverse words = List.concat_map invert_word (List.rev words)

let one_qubit_generators = [ H 0; H 1; S 0; S 1; Sdg 0; Sdg 1 ]
let cx_generators = [ Cx (0, 1); Cx (1, 0) ]

(* The full table: key -> (index, word building that element from the
   identity).  Built by closing under 1q generators, then seeding the
   next layer with one CNOT, and so on. *)
let build_table () =
  let table : (string, word) Hashtbl.t = Hashtbl.create (2 * size) in
  let words = ref [] in
  let identity = Tableau.create 2 in
  Hashtbl.add table (Tableau.key identity) [];
  words := [ [] ];
  let apply_new base_tab base_word g =
    let t = Tableau.copy base_tab in
    apply_gate t g;
    let k = Tableau.key t in
    if Hashtbl.mem table k then None
    else begin
      let w = base_word @ [ g ] in
      Hashtbl.add table k w;
      words := w :: !words;
      Some w
    end
  in
  let replay w =
    let t = Tableau.create 2 in
    apply_word t w;
    t
  in
  let close_1q frontier =
    let queue = Queue.create () in
    List.iter (fun w -> Queue.add w queue) frontier;
    let added = ref [] in
    while not (Queue.is_empty queue) do
      let w = Queue.pop queue in
      let t = replay w in
      List.iter
        (fun g ->
          match apply_new t w g with
          | Some w' ->
            Queue.add w' queue;
            added := w' :: !added
          | None -> ())
        one_qubit_generators
    done;
    !added
  in
  let layer0 = close_1q [ [] ] in
  let next_layer layer =
    let seeds =
      List.concat_map
        (fun w ->
          let t = replay w in
          List.filter_map (fun g -> apply_new t w g) cx_generators)
        ([] :: layer)
    in
    seeds @ close_1q seeds
  in
  let layer1 = next_layer ([] :: layer0) in
  let layer2 = next_layer layer1 in
  let _layer3 = next_layer layer2 in
  assert (Hashtbl.length table = size);
  Array.of_list (List.rev !words)

let words_cache = lazy (build_table ())

let table_words () = Lazy.force words_cache

(* key -> index lookup for inversion *)
let index_cache =
  lazy
    (let words = table_words () in
     let idx = Hashtbl.create (2 * size) in
     Array.iteri
       (fun i w ->
         let t = Tableau.create 2 in
         apply_word t w;
         Hashtbl.add idx (Tableau.key t) i)
       words;
     idx)

let sample rng =
  let words = table_words () in
  words.(Rng.int rng (Array.length words))

let cnot_count w =
  List.length (List.filter (function Cx _ -> true | H _ | S _ | Sdg _ -> false) w)

let average_cnots () =
  let words = table_words () in
  let total = Array.fold_left (fun acc w -> acc + cnot_count w) 0 words in
  float_of_int total /. float_of_int (Array.length words)

let inverse_word t =
  if Tableau.nqubits t <> 2 then invalid_arg "Clifford2.inverse_word: need a 2-qubit tableau";
  (* Find the index of the element U that t represents, then search
     for the element V with V . U = I by checking U's word inverted —
     the inverted word is a valid circuit for U^{-1}; return the
     *representative* word of that element so gate counts stay
     canonical. *)
  let words = table_words () in
  let idx = Lazy.force index_cache in
  let inv_naive = invert_word (match Hashtbl.find_opt idx (Tableau.key t) with
    | Some i -> words.(i)
    | None ->
      (* t may carry sign differences from Pauli frames that keep it a
         valid Clifford; fall back to synthesizing via its own word:
         replay the inverse of the raw tableau is not available, so
         reject. *)
      invalid_arg "Clifford2.inverse_word: tableau is not in the group table")
  in
  (* Canonicalize: look up the representative of the inverse element. *)
  let ti = Tableau.create 2 in
  apply_word ti inv_naive;
  match Hashtbl.find_opt idx (Tableau.key ti) with
  | Some i -> words.(i)
  | None -> inv_naive
