lib/characterization/binpack.mli: Qcx_device Qcx_util
