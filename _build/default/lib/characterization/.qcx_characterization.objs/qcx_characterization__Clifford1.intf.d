lib/characterization/clifford1.mli: Qcx_stabilizer Qcx_util
