lib/characterization/clifford1.ml: Array Hashtbl Lazy List Qcx_stabilizer Qcx_util Queue
