lib/characterization/policy.ml: Binpack Hashtbl List Qcx_device Qcx_util Rb
