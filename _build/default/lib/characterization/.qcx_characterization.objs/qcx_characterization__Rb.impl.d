lib/characterization/rb.ml: Array Clifford1 Clifford2 List Option Qcx_circuit Qcx_device Qcx_noise Qcx_scheduler Qcx_stabilizer Qcx_util String
