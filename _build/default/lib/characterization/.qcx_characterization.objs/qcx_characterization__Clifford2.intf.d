lib/characterization/clifford2.mli: Qcx_stabilizer Qcx_util
