lib/characterization/binpack.ml: List Qcx_device Qcx_util
