lib/characterization/policy.mli: Binpack Qcx_device Qcx_util Rb
