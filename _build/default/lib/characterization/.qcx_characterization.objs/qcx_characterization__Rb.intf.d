lib/characterization/rb.mli: Qcx_device Qcx_util
