lib/characterization/clifford2.ml: Array Hashtbl Lazy List Qcx_stabilizer Qcx_util Queue
