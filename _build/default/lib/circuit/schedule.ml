type t = {
  circuit : Circuit.t;
  dag : Dag.t;
  starts : float array;
  durations : float array;
}

let make circuit ~starts ~durations =
  let n = Circuit.length circuit in
  if Array.length starts <> n || Array.length durations <> n then
    invalid_arg "Schedule.make: array length must equal circuit length";
  List.iter
    (fun g ->
      if Gate.is_barrier g && durations.(g.Gate.id) <> 0.0 then
        invalid_arg "Schedule.make: barriers must have zero duration")
    (Circuit.gates circuit);
  { circuit; dag = Dag.of_circuit circuit; starts; durations }

let circuit t = t.circuit

let check_id t id =
  if id < 0 || id >= Circuit.length t.circuit then invalid_arg "Schedule: bad gate id"

let start t id =
  check_id t id;
  t.starts.(id)

let duration t id =
  check_id t id;
  t.durations.(id)

let finish t id = start t id +. duration t id

let makespan t =
  let m = ref 0.0 in
  Array.iteri (fun id s -> m := max !m (s +. t.durations.(id))) t.starts;
  !m

let overlaps t a b =
  check_id t a;
  check_id t b;
  t.starts.(a) +. t.durations.(a) > t.starts.(b)
  && t.starts.(b) +. t.durations.(b) > t.starts.(a)

let gates_by_start t =
  List.sort
    (fun g1 g2 ->
      let c = compare t.starts.(g1.Gate.id) t.starts.(g2.Gate.id) in
      if c <> 0 then c else compare g1.Gate.id g2.Gate.id)
    (Circuit.gates t.circuit)

let qubit_lifetime t q =
  let first = ref infinity and last = ref neg_infinity in
  List.iter
    (fun g ->
      if (not (Gate.is_barrier g)) && List.mem q g.Gate.qubits then begin
        first := min !first t.starts.(g.Gate.id);
        last := max !last (t.starts.(g.Gate.id) +. t.durations.(g.Gate.id))
      end)
    (Circuit.gates t.circuit);
  if !first = infinity then None else Some (!first, !last)

let validate t =
  let problems = ref [] in
  let note fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  (* (a) dependencies *)
  List.iter
    (fun g ->
      let id = g.Gate.id in
      List.iter
        (fun p ->
          if t.starts.(id) +. 1e-9 < t.starts.(p) +. t.durations.(p) then
            note "gate %d starts before its dependency %d finishes" id p)
        (Dag.preds t.dag id))
    (Circuit.gates t.circuit);
  (* (b) qubit exclusivity *)
  let nq = Circuit.nqubits t.circuit in
  for q = 0 to nq - 1 do
    let on_q =
      List.filter
        (fun g -> (not (Gate.is_barrier g)) && List.mem q g.Gate.qubits)
        (Circuit.gates t.circuit)
    in
    let rec check = function
      | a :: (b :: _ as rest) ->
        if overlaps t a.Gate.id b.Gate.id then
          note "gates %d and %d overlap on qubit %d" a.Gate.id b.Gate.id q;
        check rest
      | [ _ ] | [] -> ()
    in
    check
      (List.sort (fun a b -> compare t.starts.(a.Gate.id) t.starts.(b.Gate.id)) on_q)
  done;
  (* (c) simultaneous readout *)
  let measure_starts =
    List.filter_map
      (fun g -> if Gate.is_measure g then Some t.starts.(g.Gate.id) else None)
      (Circuit.gates t.circuit)
  in
  (match measure_starts with
  | [] -> ()
  | s0 :: rest ->
    if List.exists (fun s -> Float.abs (s -. s0) > 1e-9) rest then
      note "measurements are not simultaneous");
  match !problems with [] -> Ok () | p -> Error (String.concat "; " (List.rev p))

let shift_to_zero t =
  let earliest = Array.fold_left min infinity t.starts in
  let earliest = if earliest = infinity then 0.0 else earliest in
  { t with starts = Array.map (fun s -> s -. earliest) t.starts }

let right_align t =
  let n = Circuit.length t.circuit in
  let measure_start =
    List.fold_left
      (fun acc g -> if Gate.is_measure g then min acc t.starts.(g.Gate.id) else acc)
      infinity (Circuit.gates t.circuit)
  in
  let deadline = if measure_start = infinity then makespan t else measure_start in
  let new_starts = Array.copy t.starts in
  (* Reverse topological (= reverse program) order. *)
  for id = n - 1 downto 0 do
    let g = Dag.gate t.dag id in
    if not (Gate.is_measure g) then begin
      let latest_finish =
        List.fold_left (fun acc s -> min acc new_starts.(s)) deadline (Dag.succs t.dag id)
      in
      new_starts.(id) <- latest_finish -. t.durations.(id)
    end
  done;
  { t with starts = new_starts }

let pp_timeline fmt t =
  let scale = 90.0 in
  let span = makespan t in
  let unit_ns = if span <= 0.0 then 1.0 else span /. scale in
  let nq = Circuit.nqubits t.circuit in
  Format.fprintf fmt "makespan: %.0f ns@." span;
  for q = 0 to nq - 1 do
    let on_q =
      List.filter
        (fun g -> Gate.is_unitary g && List.mem q g.Gate.qubits)
        (Circuit.gates t.circuit)
    in
    if on_q <> [] then begin
      let line = Bytes.make (int_of_float scale + 1) '.' in
      List.iter
        (fun g ->
          let s = int_of_float (t.starts.(g.Gate.id) /. unit_ns) in
          let e = int_of_float ((t.starts.(g.Gate.id) +. t.durations.(g.Gate.id)) /. unit_ns) in
          let label = Gate.kind_name g.Gate.kind in
          for k = s to min e (Bytes.length line - 1) do
            let ch =
              let off = k - s in
              if off < String.length label then label.[off] else '='
            in
            Bytes.set line k ch
          done)
        on_q;
      Format.fprintf fmt "q%-2d |%s|@." q (Bytes.to_string line)
    end
  done
