type t = { nqubits : int; rev_gates : Gate.t list; next_id : int }

let create nqubits =
  if nqubits <= 0 then invalid_arg "Circuit.create: nqubits must be positive";
  { nqubits; rev_gates = []; next_id = 0 }

let nqubits t = t.nqubits

let add t kind qubits =
  let g = { Gate.id = t.next_id; kind; qubits } in
  match Gate.validate ~nqubits:t.nqubits g with
  | Error msg -> invalid_arg ("Circuit.add: " ^ msg)
  | Ok () -> { t with rev_gates = g :: t.rev_gates; next_id = t.next_id + 1 }

let h t q = add t Gate.H [ q ]
let x t q = add t Gate.X [ q ]
let y t q = add t Gate.Y [ q ]
let z t q = add t Gate.Z [ q ]
let s t q = add t Gate.S [ q ]
let sdg t q = add t Gate.Sdg [ q ]
let t_gate t q = add t Gate.T [ q ]
let tdg t q = add t Gate.Tdg [ q ]
let rx t theta q = add t (Gate.Rx theta) [ q ]
let ry t theta q = add t (Gate.Ry theta) [ q ]
let rz t theta q = add t (Gate.Rz theta) [ q ]
let u2 t phi lam q = add t (Gate.U2 (phi, lam)) [ q ]
let cnot t ~control ~target = add t Gate.Cnot [ control; target ]
let swap t p q = add t Gate.Swap [ p; q ]
let barrier t qs = add t Gate.Barrier qs
let measure t q = add t Gate.Measure [ q ]

let gates t = List.rev t.rev_gates

let used_qubits t =
  let seen = Array.make t.nqubits false in
  List.iter
    (fun g -> if not (Gate.is_barrier g) then List.iter (fun q -> seen.(q) <- true) g.Gate.qubits)
    t.rev_gates;
  List.filter (fun q -> seen.(q)) (List.init t.nqubits Fun.id)

let measure_all t = List.fold_left measure t (used_qubits t)

let gate t id =
  match List.find_opt (fun g -> g.Gate.id = id) t.rev_gates with
  | Some g -> g
  | None -> invalid_arg (Printf.sprintf "Circuit.gate: unknown id %d" id)

let length t = t.next_id

let two_qubit_count t =
  List.length (List.filter Gate.is_two_qubit t.rev_gates)

let unitary_count t = List.length (List.filter Gate.is_unitary t.rev_gates)

let append a b =
  if a.nqubits <> b.nqubits then invalid_arg "Circuit.append: nqubits mismatch";
  List.fold_left (fun acc g -> add acc g.Gate.kind g.Gate.qubits) a (gates b)

let map_qubits t f ~nqubits =
  let mapped_used = List.map f (used_qubits t) in
  if List.length (List.sort_uniq compare mapped_used) <> List.length mapped_used then
    invalid_arg "Circuit.map_qubits: mapping not injective on used qubits";
  List.fold_left
    (fun acc g -> add acc g.Gate.kind (List.map f g.Gate.qubits))
    (create nqubits) (gates t)

let decompose_swaps t =
  List.fold_left
    (fun acc g ->
      match (g.Gate.kind, g.Gate.qubits) with
      | Gate.Swap, [ p; q ] ->
        let acc = cnot acc ~control:p ~target:q in
        let acc = cnot acc ~control:q ~target:p in
        cnot acc ~control:p ~target:q
      | _ -> add acc g.Gate.kind g.Gate.qubits)
    (create t.nqubits) (gates t)

let depth t =
  let level = Array.make t.nqubits 0 in
  List.iter
    (fun g ->
      if Gate.is_unitary g then begin
        let d = 1 + List.fold_left (fun acc q -> max acc level.(q)) 0 g.Gate.qubits in
        List.iter (fun q -> level.(q) <- d) g.Gate.qubits
      end
      else if Gate.is_barrier g then begin
        (* A barrier synchronizes its qubits without adding depth. *)
        let d = List.fold_left (fun acc q -> max acc level.(q)) 0 g.Gate.qubits in
        List.iter (fun q -> level.(q) <- d) g.Gate.qubits
      end)
    (gates t);
  Array.fold_left max 0 level

let pp fmt t =
  Format.fprintf fmt "circuit(%d qubits, %d gates)@." t.nqubits (length t);
  List.iter (fun g -> Format.fprintf fmt "  %a@." Gate.pp g) (gates t)
