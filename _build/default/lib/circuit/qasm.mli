(** OpenQASM 2.0 emission and parsing.

    Emission is good enough to inspect compiled output or feed other
    toolchains; the repository's own executor consumes [Schedule.t]
    directly.  The parser accepts the dialect this library emits plus
    the common single-qubit zoo (u1/u2/u3 with literal angles, cz),
    enough to ingest circuits produced by mainstream compilers for
    these devices.  [parse] and [of_circuit] round-trip. *)

val of_circuit : Circuit.t -> string
(** Render a circuit as an OpenQASM 2.0 program. *)

val of_schedule : Schedule.t -> string
(** Render a schedule as OpenQASM with [// t=...ns] timing comments,
    gates in start-time order. *)

val parse : string -> (Circuit.t, string) result
(** Parse an OpenQASM 2.0 program.  Supported statements: the version
    header, [include], one or more [qreg]/[creg] declarations (all
    qregs are concatenated into one index space), gate applications
    (h x y z s sdg t tdg rx ry rz u1 u2 u3 cx cz swap), [barrier]
    and [measure].  Angles must be numeric literals, optionally using
    [pi] and the forms [pi/2], [-pi/4], [2*pi].  [u1(l)] becomes
    [rz(l)]; [u3] is rejected unless it matches a u2/u1 special case.
    Classical registers and the measurement targets are recorded but
    the bit mapping is ignored (measurement order carries the
    information, as in this library's executor).  Errors carry the
    offending line. *)
