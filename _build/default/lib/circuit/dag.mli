(** Dependency DAG over a circuit's gates.

    Two gates are dependent when they share a qubit (program order
    gives the direction); barriers additionally order everything
    before them on their qubits against everything after.  The paper's
    [CanOlp(g)] set — gates that are neither ancestors nor descendants
    of [g] — is served by {!can_overlap}. *)

type t

val of_circuit : Circuit.t -> t

val circuit : t -> Circuit.t

val gate : t -> int -> Gate.t
(** O(1) lookup by gate id. *)

val preds : t -> int -> int list
(** Direct predecessors (gate ids) of a gate id. *)

val succs : t -> int -> int list

val is_ancestor : t -> int -> int -> bool
(** [is_ancestor t a b] is [true] when [a] precedes [b] on some
    dependency path (strict; a gate is not its own ancestor). *)

val can_overlap : t -> int -> int -> bool
(** Neither is an ancestor of the other. *)

val can_overlap_set : t -> int -> int list
(** All gate ids that can overlap with the given gate (excluding
    itself, barriers and measurements). *)

val topological : t -> int list
(** Gate ids in a topological (program) order. *)

val roots : t -> int list
(** Gates with no predecessors. *)
