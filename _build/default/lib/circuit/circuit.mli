(** A quantum circuit: an ordered list of gates over [nqubits] qubits.

    Gates carry unique ids (their index in program order), which the
    DAG, schedules and the SMT encoding all key on. *)

type t

val create : int -> t
(** [create nqubits] is the empty circuit. *)

val nqubits : t -> int

val add : t -> Gate.kind -> int list -> t
(** [add t kind qubits] appends a gate and returns the extended
    circuit.  Raises [Invalid_argument] if the gate fails
    [Gate.validate]. *)

val h : t -> int -> t
val x : t -> int -> t
val y : t -> int -> t
val z : t -> int -> t
val s : t -> int -> t
val sdg : t -> int -> t
val t_gate : t -> int -> t
val tdg : t -> int -> t
val rx : t -> float -> int -> t
val ry : t -> float -> int -> t
val rz : t -> float -> int -> t
val u2 : t -> float -> float -> int -> t
val cnot : t -> control:int -> target:int -> t
val swap : t -> int -> int -> t
val barrier : t -> int list -> t
val measure : t -> int -> t
val measure_all : t -> t
(** Append a measurement on every qubit that carries at least one
    unitary gate. *)

val gates : t -> Gate.t list
(** Program order. *)

val gate : t -> int -> Gate.t
(** Lookup by id.  Raises [Invalid_argument] on unknown ids. *)

val length : t -> int
(** Number of gates (including barriers and measurements). *)

val two_qubit_count : t -> int
val unitary_count : t -> int

val used_qubits : t -> int list
(** Sorted qubits touched by at least one non-barrier gate. *)

val append : t -> t -> t
(** [append a b] concatenates [b] after [a] (same [nqubits]);
    ids of [b]'s gates are re-assigned. *)

val map_qubits : t -> (int -> int) -> nqubits:int -> t
(** Relabel qubits (e.g. place a logical circuit onto hardware
    qubits).  The mapping must be injective on the used qubits. *)

val decompose_swaps : t -> t
(** Replace each logical [Swap p q] by its hardware implementation
    [cx p q; cx q p; cx p q] (footnote 3 of the paper).  Ids are
    re-assigned. *)

val depth : t -> int
(** Dependency-graph depth counting unitary gates (barriers and
    measures excluded). *)

val pp : Format.formatter -> t -> unit
