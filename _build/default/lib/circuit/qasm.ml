let header nq =
  Printf.sprintf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[%d];\ncreg c[%d];\n" nq nq

let gate_line g =
  let q = List.map (Printf.sprintf "q[%d]") g.Gate.qubits in
  match (g.Gate.kind, q) with
  | Gate.Measure, [ target ] ->
    let qubit = List.hd g.Gate.qubits in
    Printf.sprintf "measure %s -> c[%d];" target qubit
  | Gate.Barrier, qs -> Printf.sprintf "barrier %s;" (String.concat ", " qs)
  | Gate.Cnot, [ c; t ] -> Printf.sprintf "cx %s, %s;" c t
  | Gate.Swap, [ a; b ] -> Printf.sprintf "swap %s, %s;" a b
  | Gate.Rx theta, [ a ] -> Printf.sprintf "rx(%g) %s;" theta a
  | Gate.Ry theta, [ a ] -> Printf.sprintf "ry(%g) %s;" theta a
  | Gate.Rz theta, [ a ] -> Printf.sprintf "rz(%g) %s;" theta a
  | Gate.U2 (phi, lam), [ a ] -> Printf.sprintf "u2(%g,%g) %s;" phi lam a
  | kind, [ a ] -> Printf.sprintf "%s %s;" (Gate.kind_name kind) a
  | kind, qs -> Printf.sprintf "%s %s;" (Gate.kind_name kind) (String.concat ", " qs)

let of_circuit c =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header (Circuit.nqubits c));
  List.iter
    (fun g ->
      Buffer.add_string buf (gate_line g);
      Buffer.add_char buf '\n')
    (Circuit.gates c);
  Buffer.contents buf

let of_schedule sched =
  let c = Schedule.circuit sched in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header (Circuit.nqubits c));
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "%-40s // t=%.0fns d=%.0fns\n" (gate_line g)
           (Schedule.start sched g.Gate.id)
           (Schedule.duration sched g.Gate.id)))
    (Schedule.gates_by_start sched);
  Buffer.contents buf


(* ---- parsing ---- *)

exception Parse_error of string

let fail line msg = raise (Parse_error (Printf.sprintf "%s: %s" msg (String.trim line)))

(* Angle expressions: numeric literals with optional pi, e.g.
   "1.5", "pi", "-pi/2", "3*pi/4", "2*pi". *)
let parse_angle line s =
  let s = String.trim s in
  let s = String.lowercase_ascii s in
  let negate, s =
    if String.length s > 0 && s.[0] = '-' then (true, String.sub s 1 (String.length s - 1))
    else (false, s)
  in
  let value =
    match String.index_opt s '/' with
    | Some i ->
      let num = String.trim (String.sub s 0 i) in
      let den = String.trim (String.sub s (i + 1) (String.length s - i - 1)) in
      let num_v =
        match String.index_opt num '*' with
        | Some j ->
          let a = String.trim (String.sub num 0 j) in
          let b = String.trim (String.sub num (j + 1) (String.length num - j - 1)) in
          (try float_of_string a with _ -> fail line ("bad angle factor " ^ a))
          *. (if b = "pi" then Float.pi else try float_of_string b with _ -> fail line ("bad angle " ^ b))
        | None -> if num = "pi" then Float.pi else (try float_of_string num with _ -> fail line ("bad angle " ^ num))
      in
      let den_v = try float_of_string den with _ -> fail line ("bad angle denominator " ^ den) in
      num_v /. den_v
    | None -> (
      match String.index_opt s '*' with
      | Some j ->
        let a = String.trim (String.sub s 0 j) in
        let b = String.trim (String.sub s (j + 1) (String.length s - j - 1)) in
        (try float_of_string a with _ -> fail line ("bad angle factor " ^ a))
        *. (if b = "pi" then Float.pi else try float_of_string b with _ -> fail line ("bad angle " ^ b))
      | None ->
        if s = "pi" then Float.pi
        else (try float_of_string s with _ -> fail line ("bad angle " ^ s)))
  in
  if negate then -.value else value

(* "q[3]" -> ("q", 3) *)
let parse_operand line s =
  let s = String.trim s in
  match (String.index_opt s '[', String.index_opt s ']') with
  | Some i, Some j when j > i + 1 ->
    let reg = String.sub s 0 i in
    let idx = String.sub s (i + 1) (j - i - 1) in
    (try (reg, int_of_string (String.trim idx)) with _ -> fail line ("bad index in " ^ s))
  | _ -> fail line ("expected reg[index], got " ^ s)

let split_args s = List.map String.trim (String.split_on_char ',' s)

(* Strip "// ..." comments. *)
let strip_comment line =
  let rec find i =
    if i + 1 >= String.length line then String.length line
    else if line.[i] = '/' && line.[i + 1] = '/' then i
    else find (i + 1)
  in
  String.sub line 0 (find 0)

type statement =
  | Qreg of string * int
  | App of string * float list * (string * int) list
  | Barrier_stmt of (string * int) list
  | Measure_stmt of string * int
  | Skip

let parse_statement raw =
  let line = String.trim (strip_comment raw) in
  if line = "" then Skip
  else begin
    (* drop trailing ';' *)
    let line =
      if String.length line > 0 && line.[String.length line - 1] = ';' then
        String.trim (String.sub line 0 (String.length line - 1))
      else line
    in
    if line = "" then Skip
    else
      let lower = String.lowercase_ascii line in
      let starts prefix =
        String.length lower >= String.length prefix
        && String.sub lower 0 (String.length prefix) = prefix
      in
      if starts "openqasm" || starts "include" || starts "creg" then Skip
      else if starts "qreg" then begin
        let rest = String.trim (String.sub line 4 (String.length line - 4)) in
        let reg, size = parse_operand line rest in
        Qreg (reg, size)
      end
      else if starts "barrier" then begin
        let rest = String.trim (String.sub line 7 (String.length line - 7)) in
        Barrier_stmt (List.map (parse_operand line) (split_args rest))
      end
      else if starts "measure" then begin
        let rest = String.trim (String.sub line 7 (String.length line - 7)) in
        (* "q[3] -> c[3]" *)
        let source =
          match String.index_opt rest '-' with
          | Some i -> String.trim (String.sub rest 0 i)
          | None -> rest
        in
        let reg, idx = parse_operand line source in
        Measure_stmt (reg, idx)
      end
      else begin
        (* gate name, optional (params), operands *)
        let name_end =
          let rec scan i =
            if i >= String.length line then i
            else
              match line.[i] with
              | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> scan (i + 1)
              | _ -> i
          in
          scan 0
        in
        let name = String.lowercase_ascii (String.sub line 0 name_end) in
        let rest = String.trim (String.sub line name_end (String.length line - name_end)) in
        let params, operand_str =
          if String.length rest > 0 && rest.[0] = '(' then begin
            match String.index_opt rest ')' with
            | Some j ->
              let inside = String.sub rest 1 (j - 1) in
              ( List.map (parse_angle line) (split_args inside),
                String.trim (String.sub rest (j + 1) (String.length rest - j - 1)) )
            | None -> fail line "unterminated parameter list"
          end
          else ([], rest)
        in
        if operand_str = "" then fail line "missing operands";
        App (name, params, List.map (parse_operand line) (split_args operand_str))
      end
  end

let kind_of_app line name params =
  match (name, params) with
  | "h", [] -> Gate.H
  | "x", [] -> Gate.X
  | "y", [] -> Gate.Y
  | "z", [] -> Gate.Z
  | "s", [] -> Gate.S
  | "sdg", [] -> Gate.Sdg
  | "t", [] -> Gate.T
  | "tdg", [] -> Gate.Tdg
  | "id", [] -> Gate.Rz 0.0
  | "rx", [ theta ] -> Gate.Rx theta
  | "ry", [ theta ] -> Gate.Ry theta
  | "rz", [ theta ] -> Gate.Rz theta
  | "u1", [ lam ] -> Gate.Rz lam
  | "u2", [ phi; lam ] -> Gate.U2 (phi, lam)
  | "u3", [ theta; phi; lam ] when Float.abs (theta -. (Float.pi /. 2.0)) < 1e-9 ->
    Gate.U2 (phi, lam)
  | "u3", [ theta; _; lam ] when Float.abs theta < 1e-9 -> Gate.Rz lam
  | "cx", [] -> Gate.Cnot
  | "swap", [] -> Gate.Swap
  | _ -> fail line (Printf.sprintf "unsupported gate %s/%d" name (List.length params))

let parse text =
  try
    let lines = String.split_on_char '\n' text in
    let statements = List.map parse_statement lines in
    (* register layout: concatenate qregs in declaration order *)
    let offsets = Hashtbl.create 4 in
    let total =
      List.fold_left
        (fun acc st ->
          match st with
          | Qreg (name, size) ->
            if Hashtbl.mem offsets name then raise (Parse_error ("duplicate qreg " ^ name));
            Hashtbl.replace offsets name acc;
            acc + size
          | _ -> acc)
        0 statements
    in
    if total = 0 then Error "no qreg declaration"
    else begin
      let resolve line (reg, idx) =
        match Hashtbl.find_opt offsets reg with
        | Some off -> off + idx
        | None -> fail line ("unknown register " ^ reg)
      in
      let circuit =
        List.fold_left2
          (fun c raw st ->
            match st with
            | Skip | Qreg _ -> c
            | Barrier_stmt operands -> Circuit.barrier c (List.map (resolve raw) operands)
            | Measure_stmt (reg, idx) -> Circuit.measure c (resolve raw (reg, idx))
            | App ("cz", [], [ a; b ]) ->
              (* cz = H(target) cx H(target) in this gate set *)
              let qa = resolve raw a and qb = resolve raw b in
              let c = Circuit.h c qb in
              let c = Circuit.cnot c ~control:qa ~target:qb in
              Circuit.h c qb
            | App (name, params, operands) ->
              Circuit.add c (kind_of_app raw name params) (List.map (resolve raw) operands))
          (Circuit.create total) lines statements
      in
      Ok circuit
    end
  with
  | Parse_error msg -> Error msg
  | Invalid_argument msg -> Error msg
