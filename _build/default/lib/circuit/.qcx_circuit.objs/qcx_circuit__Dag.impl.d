lib/circuit/dag.ml: Array Bytes Char Circuit Gate List
