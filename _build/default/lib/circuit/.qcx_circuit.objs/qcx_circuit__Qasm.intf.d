lib/circuit/qasm.mli: Circuit Schedule
