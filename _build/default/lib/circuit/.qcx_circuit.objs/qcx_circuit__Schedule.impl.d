lib/circuit/schedule.ml: Array Bytes Circuit Dag Float Format Gate List Printf String
