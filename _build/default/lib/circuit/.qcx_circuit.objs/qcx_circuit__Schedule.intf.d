lib/circuit/schedule.mli: Circuit Format Gate
