lib/circuit/qasm.ml: Buffer Circuit Float Gate Hashtbl List Printf Schedule String
