lib/circuit/circuit.ml: Array Format Fun Gate List Printf
