(** A timed schedule: a start time and duration (nanoseconds) for each
    gate of a circuit.

    Produced by the schedulers in [Qcx_scheduler]; consumed by the
    noise executor (which needs to know which gates overlap in time)
    and by the evaluation harness (durations, qubit lifetimes). *)

type t

val make : Circuit.t -> starts:float array -> durations:float array -> t
(** Arrays are indexed by gate id and must cover the whole circuit.
    Barriers must have zero duration. *)

val circuit : t -> Circuit.t

val start : t -> int -> float
val duration : t -> int -> float
val finish : t -> int -> float
(** [start + duration]. *)

val makespan : t -> float
(** Latest finish time (0 for an empty circuit). *)

val overlaps : t -> int -> int -> bool
(** Strict overlap in time of two gates' intervals (touching
    endpoints do not count as overlap). *)

val gates_by_start : t -> Gate.t list
(** Gates sorted by start time (ties broken by id). *)

val qubit_lifetime : t -> int -> (float * float) option
(** [qubit_lifetime t q] is [Some (first_start, last_finish)] over the
    non-barrier gates touching [q], or [None] if the qubit is unused.
    This matches the paper's lifetime definition (constraint 9):
    decoherence on a qubit begins at its first gate. *)

val validate : t -> (unit, string) result
(** Checks that (a) data dependencies are respected, (b) no two
    non-barrier gates occupy the same qubit at overlapping times, and
    (c) all measurement operations start simultaneously when any are
    present (the IBMQ hardware constraint). *)

val shift_to_zero : t -> t
(** Translate all start times so the earliest is 0. *)

val right_align : t -> t
(** Translate every gate as late as its dependents allow, with the
    final measurement layer kept fixed — the IBM hardware behaviour of
    Figure 1(c).  Preserves all orderings. *)

val pp_timeline : Format.formatter -> t -> unit
(** ASCII timeline (one row per qubit), used by the Fig. 6 harness. *)
