type t = {
  circuit : Circuit.t;
  gates : Gate.t array;  (** indexed by gate id *)
  preds : int list array;
  succs : int list array;
  ancestors : Bytes.t array;  (** [ancestors.(g)] is a bitset over gate ids *)
}

let bit_get bs i = Char.code (Bytes.get bs (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set bs i =
  Bytes.set bs (i lsr 3) (Char.chr (Char.code (Bytes.get bs (i lsr 3)) lor (1 lsl (i land 7))))

let bit_or ~into src =
  for k = 0 to Bytes.length into - 1 do
    Bytes.set into k (Char.chr (Char.code (Bytes.get into k) lor (Char.code (Bytes.get src k))))
  done

let of_circuit circuit =
  let gates = Array.of_list (Circuit.gates circuit) in
  let n = Array.length gates in
  let nq = Circuit.nqubits circuit in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  let last_on_qubit = Array.make nq (-1) in
  Array.iter
    (fun g ->
      let id = g.Gate.id in
      let direct =
        List.filter_map
          (fun q -> if last_on_qubit.(q) >= 0 then Some last_on_qubit.(q) else None)
          g.Gate.qubits
      in
      let direct = List.sort_uniq compare direct in
      preds.(id) <- direct;
      List.iter (fun p -> succs.(p) <- id :: succs.(p)) direct;
      List.iter (fun q -> last_on_qubit.(q) <- id) g.Gate.qubits)
    gates;
  let words = (n + 7) / 8 in
  let ancestors = Array.init n (fun _ -> Bytes.make (max words 1) '\000') in
  (* Program order is topological: fold ancestor bitsets forward. *)
  Array.iter
    (fun g ->
      let id = g.Gate.id in
      List.iter
        (fun p ->
          bit_or ~into:ancestors.(id) ancestors.(p);
          bit_set ancestors.(id) p)
        preds.(id))
    gates;
  { circuit; gates; preds; succs; ancestors }

let circuit t = t.circuit

let gate t id =
  if id < 0 || id >= Array.length t.gates then invalid_arg "Dag.gate: bad id";
  t.gates.(id)

let preds t id = t.preds.(id)
let succs t id = t.succs.(id)

let is_ancestor t a b =
  if a < 0 || b < 0 || a >= Array.length t.gates || b >= Array.length t.gates then
    invalid_arg "Dag.is_ancestor: bad id";
  bit_get t.ancestors.(b) a

let can_overlap t a b = a <> b && (not (is_ancestor t a b)) && not (is_ancestor t b a)

let can_overlap_set t id =
  let out = ref [] in
  Array.iter
    (fun g ->
      let other = g.Gate.id in
      if
        other <> id && Gate.is_unitary g
        && (not (is_ancestor t other id))
        && not (is_ancestor t id other)
      then out := other :: !out)
    t.gates;
  List.rev !out

let topological t = Array.to_list (Array.map (fun g -> g.Gate.id) t.gates)

let roots t =
  List.filter (fun id -> t.preds.(id) = []) (topological t)
