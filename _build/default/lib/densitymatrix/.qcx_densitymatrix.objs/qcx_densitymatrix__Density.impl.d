lib/densitymatrix/density.ml: Array List Option Qcx_linalg
