lib/densitymatrix/density.mli: Qcx_linalg
