module Cplx = Qcx_linalg.Cplx
module Mat = Qcx_linalg.Mat
module Gates = Qcx_linalg.Gates

type t = { n : int; mutable rho : Mat.t }

let create n =
  if n <= 0 || n > 8 then invalid_arg "Density.create: need 1 <= n <= 8";
  let dim = 1 lsl n in
  let rho = Mat.create dim dim in
  Mat.set rho 0 0 Cplx.one;
  { n; rho }

let nqubits t = t.n
let dim t = 1 lsl t.n
let copy t = { n = t.n; rho = Mat.init (dim t) (dim t) (Mat.get t.rho) }

let of_pure amps =
  let d = Array.length amps in
  let n = ref 0 in
  while 1 lsl !n < d do
    incr n
  done;
  if 1 lsl !n <> d then invalid_arg "Density.of_pure: length not a power of two";
  let norm = Array.fold_left (fun acc z -> acc +. Cplx.norm2 z) 0.0 amps in
  if norm <= 0.0 then invalid_arg "Density.of_pure: zero vector";
  let scale = 1.0 /. norm in
  {
    n = !n;
    rho =
      Mat.init d d (fun i j -> Cplx.scale scale (Cplx.mul amps.(i) (Cplx.conj amps.(j))));
  }

let check_qubit t q = if q < 0 || q >= t.n then invalid_arg "Density: qubit out of range"

(* rho <- (U on qubit q) rho *)
let left_mul1 t u q =
  let d = dim t in
  let bit = 1 lsl q in
  let u00 = Mat.get u 0 0 and u01 = Mat.get u 0 1 in
  let u10 = Mat.get u 1 0 and u11 = Mat.get u 1 1 in
  for col = 0 to d - 1 do
    for r = 0 to d - 1 do
      if r land bit = 0 then begin
        let r1 = r lor bit in
        let a = Mat.get t.rho r col and b = Mat.get t.rho r1 col in
        Mat.set t.rho r col (Cplx.add (Cplx.mul u00 a) (Cplx.mul u01 b));
        Mat.set t.rho r1 col (Cplx.add (Cplx.mul u10 a) (Cplx.mul u11 b))
      end
    done
  done

(* rho <- rho (U on qubit q)^dagger *)
let right_mul1_dag t u q =
  let d = dim t in
  let bit = 1 lsl q in
  (* (rho U+)_{r,c} = sum_k rho_{r,k} conj(U_{c,k}) *)
  let u00 = Cplx.conj (Mat.get u 0 0) and u01 = Cplx.conj (Mat.get u 0 1) in
  let u10 = Cplx.conj (Mat.get u 1 0) and u11 = Cplx.conj (Mat.get u 1 1) in
  for r = 0 to d - 1 do
    for c = 0 to d - 1 do
      if c land bit = 0 then begin
        let c1 = c lor bit in
        let a = Mat.get t.rho r c and b = Mat.get t.rho r c1 in
        Mat.set t.rho r c (Cplx.add (Cplx.mul a u00) (Cplx.mul b u01));
        Mat.set t.rho r c1 (Cplx.add (Cplx.mul a u10) (Cplx.mul b u11))
      end
    done
  done

let apply_unitary1 t u q =
  check_qubit t q;
  if Mat.rows u <> 2 || Mat.cols u <> 2 then invalid_arg "Density.apply_unitary1: need 2x2";
  left_mul1 t u q;
  right_mul1_dag t u q

(* Two-qubit version via explicit 4-index gather. *)
let apply_unitary2 t u q0 q1 =
  check_qubit t q0;
  check_qubit t q1;
  if q0 = q1 then invalid_arg "Density.apply_unitary2: qubits must differ";
  if Mat.rows u <> 4 || Mat.cols u <> 4 then invalid_arg "Density.apply_unitary2: need 4x4";
  let d = dim t in
  let b0 = 1 lsl q0 and b1 = 1 lsl q1 in
  let expand base k =
    let k0 = k land 1 and k1 = (k lsr 1) land 1 in
    base lor (k0 * b0) lor (k1 * b1)
  in
  (* left multiply *)
  for col = 0 to d - 1 do
    for base = 0 to d - 1 do
      if base land b0 = 0 && base land b1 = 0 then begin
        let v = Array.init 4 (fun k -> Mat.get t.rho (expand base k) col) in
        for row = 0 to 3 do
          let acc = ref Cplx.zero in
          for k = 0 to 3 do
            acc := Cplx.add !acc (Cplx.mul (Mat.get u row k) v.(k))
          done;
          Mat.set t.rho (expand base row) col !acc
        done
      end
    done
  done;
  (* right multiply by U+ *)
  for r = 0 to d - 1 do
    for base = 0 to d - 1 do
      if base land b0 = 0 && base land b1 = 0 then begin
        let v = Array.init 4 (fun k -> Mat.get t.rho r (expand base k)) in
        for c = 0 to 3 do
          let acc = ref Cplx.zero in
          for k = 0 to 3 do
            acc := Cplx.add !acc (Cplx.mul v.(k) (Cplx.conj (Mat.get u c k)))
          done;
          Mat.set t.rho r (expand base c) !acc
        done
      end
    done
  done

let h t q = apply_unitary1 t Gates.h q
let x t q = apply_unitary1 t Gates.x q
let s t q = apply_unitary1 t Gates.s q
let sdg t q = apply_unitary1 t Gates.sdg q

let cnot t ~control ~target =
  (* matrix convention: control = low bit (q0) *)
  apply_unitary2 t (Gates.cnot ~control:0 ~target:1) control target

let apply_kraus1 t kraus q =
  check_qubit t q;
  (* completeness: sum K+ K = I *)
  let total =
    List.fold_left (fun acc k -> Mat.add acc (Mat.mul (Mat.adjoint k) k)) (Mat.create 2 2) kraus
  in
  if not (Mat.approx_equal ~tol:1e-6 total (Mat.identity 2)) then
    invalid_arg "Density.apply_kraus1: Kraus operators not complete";
  let original = copy t in
  let d = dim t in
  t.rho <- Mat.create d d;
  List.iter
    (fun k ->
      let branch = copy original in
      left_mul1 branch k q;
      right_mul1_dag branch k q;
      t.rho <- Mat.add t.rho branch.rho)
    kraus

let mix t branches =
  (* branches: (probability, transform) applied to copies of t *)
  let original = copy t in
  let d = dim t in
  t.rho <- Mat.create d d;
  List.iter
    (fun (p, transform) ->
      let branch = copy original in
      transform branch;
      t.rho <- Mat.add t.rho (Mat.scale (Cplx.re p) branch.rho))
    branches

let depolarizing1 t ~p q =
  check_qubit t q;
  if p < 0.0 || p > 1.0 then invalid_arg "Density.depolarizing1: p out of range";
  mix t
    [
      (1.0 -. p, fun _ -> ());
      (p /. 3.0, fun b -> apply_unitary1 b Gates.x q);
      (p /. 3.0, fun b -> apply_unitary1 b Gates.y q);
      (p /. 3.0, fun b -> apply_unitary1 b Gates.z q);
    ]

let depolarizing2 t ~p q0 q1 =
  check_qubit t q0;
  check_qubit t q1;
  if p < 0.0 || p > 1.0 then invalid_arg "Density.depolarizing2: p out of range";
  let paulis = [| None; Some Gates.x; Some Gates.y; Some Gates.z |] in
  let branches = ref [ (1.0 -. p, fun _ -> ()) ] in
  for a = 0 to 3 do
    for b = 0 to 3 do
      if a <> 0 || b <> 0 then
        branches :=
          ( p /. 15.0,
            fun br ->
              Option.iter (fun m -> apply_unitary1 br m q0) paulis.(a);
              Option.iter (fun m -> apply_unitary1 br m q1) paulis.(b) )
          :: !branches
    done
  done;
  mix t !branches

let pauli_twirl_idle t ~px ~py ~pz q =
  check_qubit t q;
  let pid = 1.0 -. px -. py -. pz in
  if pid < -1e-9 then invalid_arg "Density.pauli_twirl_idle: probabilities exceed 1";
  mix t
    [
      (max 0.0 pid, fun _ -> ());
      (px, fun b -> apply_unitary1 b Gates.x q);
      (py, fun b -> apply_unitary1 b Gates.y q);
      (pz, fun b -> apply_unitary1 b Gates.z q);
    ]

let amplitude_damping t ~gamma q =
  if gamma < 0.0 || gamma > 1.0 then invalid_arg "Density.amplitude_damping: gamma out of range";
  let k0 =
    Mat.of_arrays
      [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; Cplx.re (sqrt (1.0 -. gamma)) |] |]
  in
  let k1 =
    Mat.of_arrays [| [| Cplx.zero; Cplx.re (sqrt gamma) |]; [| Cplx.zero; Cplx.zero |] |]
  in
  apply_kraus1 t [ k0; k1 ] q

let phase_damping t ~lambda q =
  if lambda < 0.0 || lambda > 1.0 then invalid_arg "Density.phase_damping: lambda out of range";
  let k0 =
    Mat.of_arrays
      [| [| Cplx.one; Cplx.zero |]; [| Cplx.zero; Cplx.re (sqrt (1.0 -. lambda)) |] |]
  in
  let k1 =
    Mat.of_arrays [| [| Cplx.zero; Cplx.zero |]; [| Cplx.zero; Cplx.re (sqrt lambda) |] |]
  in
  apply_kraus1 t [ k0; k1 ] q

let bitflip_readout t ~flip q =
  check_qubit t q;
  mix t [ (1.0 -. flip, fun _ -> ()); (flip, fun b -> apply_unitary1 b Gates.x q) ]

let probability t k =
  if k < 0 || k >= dim t then invalid_arg "Density.probability: index out of range";
  (Mat.get t.rho k k).Cplx.re

let probabilities t = Array.init (dim t) (probability t)

let trace t = (Mat.trace t.rho).Cplx.re

let purity t = (Mat.trace (Mat.mul t.rho t.rho)).Cplx.re

let fidelity_pure t psi =
  if Array.length psi <> dim t then invalid_arg "Density.fidelity_pure: dimension mismatch";
  (* <psi| rho |psi> *)
  let v = Mat.apply t.rho psi in
  let acc = ref Cplx.zero in
  Array.iteri (fun i x -> acc := Cplx.add !acc (Cplx.mul (Cplx.conj psi.(i)) x)) v;
  !acc.Cplx.re

let expectation t o =
  if Mat.rows o <> dim t then invalid_arg "Density.expectation: dimension mismatch";
  (Mat.trace (Mat.mul t.rho o)).Cplx.re

let to_mat t = Mat.init (dim t) (dim t) (Mat.get t.rho)
