(** Density-matrix simulator: exact (non-sampled) evolution of open
    quantum systems under unitaries and Kraus channels.

    Complements the two pure-state backends: where [Qcx_noise.Exec]
    averages Monte-Carlo Pauli-insertion trajectories, this simulator
    applies the corresponding channels exactly, so trajectory averages
    can be validated against closed-form evolution (see
    test/test_density.ml).  Memory is 4^n complex entries — intended
    for the 2-6 qubit subsystems the validation and tomography tests
    care about, not for full devices. *)

type t

val create : int -> t
(** [create n] is |0...0><0...0| over n qubits (n <= 8). *)

val nqubits : t -> int
val copy : t -> t

val of_pure : Qcx_linalg.Cplx.t array -> t
(** Density matrix of a pure statevector (length 2^n, normalized
    internally). *)

val apply_unitary1 : t -> Qcx_linalg.Mat.t -> int -> unit
(** Apply a 2x2 unitary U: rho <- (U rho U+) on one qubit. *)

val apply_unitary2 : t -> Qcx_linalg.Mat.t -> int -> int -> unit
(** Apply a 4x4 unitary on two qubits (first argument qubit = low bit
    of the matrix index). *)

val h : t -> int -> unit
val x : t -> int -> unit
val s : t -> int -> unit
val sdg : t -> int -> unit
val cnot : t -> control:int -> target:int -> unit

val apply_kraus1 : t -> Qcx_linalg.Mat.t list -> int -> unit
(** Apply a single-qubit channel given by its Kraus operators
    (2x2 each; completeness is the caller's responsibility, checked up
    to 1e-6). *)

val depolarizing1 : t -> p:float -> int -> unit
(** rho <- (1-p) rho + p/3 (X rho X + Y rho Y + Z rho Z). *)

val depolarizing2 : t -> p:float -> int -> int -> unit
(** Two-qubit depolarizing: with probability p, a uniformly random
    non-identity two-qubit Pauli. *)

val pauli_twirl_idle : t -> px:float -> py:float -> pz:float -> int -> unit
(** The idle channel of [Qcx_noise.Channel]: probabilistic X/Y/Z. *)

val amplitude_damping : t -> gamma:float -> int -> unit
(** Exact T1 relaxation channel (Kraus form), for comparing the
    twirled approximation against the physical channel. *)

val phase_damping : t -> lambda:float -> int -> unit

val bitflip_readout : t -> flip:float -> int -> unit
(** Classical readout confusion as a channel on the diagonal. *)

val probability : t -> int -> float
(** Diagonal entry: probability of a basis state. *)

val probabilities : t -> float array

val trace : t -> float
(** Should stay 1 up to float error. *)

val purity : t -> float
(** Tr(rho^2): 1 for pure states, 1/2^n when fully mixed. *)

val fidelity_pure : t -> Qcx_linalg.Cplx.t array -> float
(** <psi| rho |psi> against a pure state. *)

val expectation : t -> Qcx_linalg.Mat.t -> float
(** Tr(rho O) for a Hermitian observable (real part returned). *)

val to_mat : t -> Qcx_linalg.Mat.t
