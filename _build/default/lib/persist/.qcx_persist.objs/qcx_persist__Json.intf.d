lib/persist/json.mli:
