lib/persist/store.ml: Array Fun Json List Qcx_device Result
