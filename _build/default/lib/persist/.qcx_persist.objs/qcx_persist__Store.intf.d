lib/persist/store.mli: Json Qcx_device
