lib/persist/json.ml: Buffer Char Float List Printf String
