(** Persistence of characterization and calibration data.

    The operational loop the paper implies — characterize in the
    morning, let every compile job of the day consume the data —
    needs the data on disk.  Formats are plain JSON; see the CLI tools
    ([qcx_characterize --output], [qcx_schedule --xtalk]). *)

val crosstalk_to_json : Qcx_device.Crosstalk.t -> Json.t
(** Ordered (target, spectator, rate) entries. *)

val crosstalk_of_json : Json.t -> (Qcx_device.Crosstalk.t, string) result

val calibration_to_json : Qcx_device.Calibration.t -> edges:Qcx_device.Topology.edge list -> Json.t
(** Snapshot of per-qubit and per-edge calibration values. *)

val calibration_of_json : Json.t -> (Qcx_device.Calibration.t, string) result

val device_snapshot_to_json : Qcx_device.Device.t -> Json.t
(** Full compiler-visible device state: name, coupling map,
    calibration, and (optionally present) characterized crosstalk is
    stored separately — the hidden ground truth is deliberately NOT
    serialized. *)

val device_snapshot_of_json :
  Json.t -> (string * Qcx_device.Topology.t * Qcx_device.Calibration.t, string) result

val save : path:string -> Json.t -> (unit, string) result
val load : path:string -> (Json.t, string) result

val save_crosstalk : path:string -> Qcx_device.Crosstalk.t -> (unit, string) result
val load_crosstalk : path:string -> (Qcx_device.Crosstalk.t, string) result
