module Crosstalk = Qcx_device.Crosstalk
module Calibration = Qcx_device.Calibration
module Topology = Qcx_device.Topology
module Device = Qcx_device.Device

let ( let* ) = Result.bind

let edge_to_json (a, b) = Json.Array [ Json.Number (float_of_int a); Json.Number (float_of_int b) ]

let edge_of_json = function
  | Json.Array [ a; b ] ->
    let* a = Json.to_int a in
    let* b = Json.to_int b in
    Ok (Topology.normalize (a, b))
  | _ -> Error "expected [a, b] edge"

let crosstalk_to_json xtalk =
  Json.Object
    [
      ("format", Json.String "qcx-crosstalk-v1");
      ( "entries",
        Json.Array
          (List.map
             (fun (target, spectator, rate) ->
               Json.Object
                 [
                   ("target", edge_to_json target);
                   ("spectator", edge_to_json spectator);
                   ("rate", Json.Number rate);
                 ])
             (Crosstalk.entries xtalk)) );
    ]

let crosstalk_of_json doc =
  let* fmt = Json.find_str "format" doc in
  if fmt <> "qcx-crosstalk-v1" then Error ("unknown format " ^ fmt)
  else
    let* entries = Json.find_list "entries" doc in
    List.fold_left
      (fun acc entry ->
        let* xtalk = acc in
        let* target =
          match Json.member "target" entry with
          | Some e -> edge_of_json e
          | None -> Error "missing target"
        in
        let* spectator =
          match Json.member "spectator" entry with
          | Some e -> edge_of_json e
          | None -> Error "missing spectator"
        in
        let* rate = Json.find_float "rate" entry in
        Ok (Crosstalk.set xtalk ~target ~spectator rate))
      (Ok Crosstalk.empty) entries

let qubit_to_json (q : Calibration.qubit_cal) =
  Json.Object
    [
      ("t1", Json.Number q.Calibration.t1);
      ("t2", Json.Number q.Calibration.t2);
      ("readout_error", Json.Number q.Calibration.readout_error);
      ("single_qubit_error", Json.Number q.Calibration.single_qubit_error);
      ("single_qubit_duration", Json.Number q.Calibration.single_qubit_duration);
      ("readout_duration", Json.Number q.Calibration.readout_duration);
    ]

let qubit_of_json doc =
  let* t1 = Json.find_float "t1" doc in
  let* t2 = Json.find_float "t2" doc in
  let* readout_error = Json.find_float "readout_error" doc in
  let* single_qubit_error = Json.find_float "single_qubit_error" doc in
  let* single_qubit_duration = Json.find_float "single_qubit_duration" doc in
  let* readout_duration = Json.find_float "readout_duration" doc in
  Ok
    {
      Calibration.t1;
      t2;
      readout_error;
      single_qubit_error;
      single_qubit_duration;
      readout_duration;
    }

let calibration_to_json cal ~edges =
  Json.Object
    [
      ("format", Json.String "qcx-calibration-v1");
      ( "qubits",
        Json.Array
          (List.init (Calibration.nqubits cal) (fun q -> qubit_to_json (Calibration.qubit cal q)))
      );
      ( "gates",
        Json.Array
          (List.map
             (fun e ->
               let g = Calibration.gate cal e in
               Json.Object
                 [
                   ("edge", edge_to_json e);
                   ("cnot_error", Json.Number g.Calibration.cnot_error);
                   ("cnot_duration", Json.Number g.Calibration.cnot_duration);
                 ])
             edges) );
    ]

let calibration_of_json doc =
  let* fmt = Json.find_str "format" doc in
  if fmt <> "qcx-calibration-v1" then Error ("unknown format " ^ fmt)
  else
    let* qubit_docs = Json.find_list "qubits" doc in
    let* qubits =
      List.fold_left
        (fun acc qdoc ->
          let* tl = acc in
          let* q = qubit_of_json qdoc in
          Ok (q :: tl))
        (Ok []) qubit_docs
    in
    let qubits = Array.of_list (List.rev qubits) in
    let* gate_docs = Json.find_list "gates" doc in
    let* gates =
      List.fold_left
        (fun acc gdoc ->
          let* tl = acc in
          let* edge =
            match Json.member "edge" gdoc with
            | Some e -> edge_of_json e
            | None -> Error "missing edge"
          in
          let* cnot_error = Json.find_float "cnot_error" gdoc in
          let* cnot_duration = Json.find_float "cnot_duration" gdoc in
          Ok ((edge, { Calibration.cnot_error; cnot_duration }) :: tl))
        (Ok []) gate_docs
    in
    Ok (Calibration.create ~qubits ~gates)

let device_snapshot_to_json device =
  let topo = Device.topology device in
  Json.Object
    [
      ("format", Json.String "qcx-device-v1");
      ("name", Json.String (Device.name device));
      ("nqubits", Json.Number (float_of_int (Topology.nqubits topo)));
      ("edges", Json.Array (List.map edge_to_json (Topology.edges topo)));
      ( "calibration",
        calibration_to_json (Device.calibration device) ~edges:(Topology.edges topo) );
    ]

let device_snapshot_of_json doc =
  let* fmt = Json.find_str "format" doc in
  if fmt <> "qcx-device-v1" then Error ("unknown format " ^ fmt)
  else
    let* name = Json.find_str "name" doc in
    let* nq =
      match Json.member "nqubits" doc with Some v -> Json.to_int v | None -> Error "missing nqubits"
    in
    let* edge_docs = Json.find_list "edges" doc in
    let* edges =
      List.fold_left
        (fun acc e ->
          let* tl = acc in
          let* edge = edge_of_json e in
          Ok (edge :: tl))
        (Ok []) edge_docs
    in
    let topo = Topology.create ~nqubits:nq ~edges:(List.rev edges) in
    let* cal =
      match Json.member "calibration" doc with
      | Some c -> calibration_of_json c
      | None -> Error "missing calibration"
    in
    Ok (name, topo, cal)

let save ~path doc =
  try
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (Json.to_string doc);
        output_char oc '\n');
    Ok ()
  with Sys_error msg -> Error msg

let load ~path =
  try
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> Json.of_string (really_input_string ic (in_channel_length ic)))
  with Sys_error msg -> Error msg

let save_crosstalk ~path xtalk = save ~path (crosstalk_to_json xtalk)

let load_crosstalk ~path =
  let* doc = load ~path in
  crosstalk_of_json doc
