lib/noise/exec.ml: Array Channel Hashtbl List Option Printf Qcx_circuit Qcx_device Qcx_linalg Qcx_stabilizer Qcx_statevector Qcx_util String
