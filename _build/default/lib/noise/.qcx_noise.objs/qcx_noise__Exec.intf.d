lib/noise/exec.mli: Qcx_circuit Qcx_device Qcx_statevector Qcx_util
