lib/noise/channel.mli: Qcx_util
