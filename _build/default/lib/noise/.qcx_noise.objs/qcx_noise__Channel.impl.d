lib/noise/channel.ml: Qcx_util
