module Rng = Qcx_util.Rng
module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Schedule = Qcx_circuit.Schedule
module Device = Qcx_device.Device
module Calibration = Qcx_device.Calibration
module Crosstalk = Qcx_device.Crosstalk
module Tableau = Qcx_stabilizer.Tableau
module State = Qcx_statevector.State
module Gates = Qcx_linalg.Gates

type backend = Stabilizer | Statevector

type counts = { table : (string, int) Hashtbl.t; mutable total : int }

let counts_total c = c.total
let counts_get c k = Option.value ~default:0 (Hashtbl.find_opt c.table k)

let counts_bindings c =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.table [])

let distribution c =
  let n = float_of_int (max 1 c.total) in
  List.map (fun (k, v) -> (k, float_of_int v /. n)) (counts_bindings c)

let measured_qubits circuit =
  List.sort_uniq compare
    (List.concat_map
       (fun g -> if Gate.is_measure g then g.Gate.qubits else [])
       (Circuit.gates circuit))

let edge_of_cnot g =
  match g.Gate.qubits with
  | [ a; b ] -> Qcx_device.Topology.normalize (a, b)
  | _ -> invalid_arg "Exec: malformed 2-qubit gate"

let effective_cnot_error device sched id =
  let circuit = Schedule.circuit sched in
  let g = Circuit.gate circuit id in
  if not (Gate.is_two_qubit g) then invalid_arg "Exec.effective_cnot_error: not a CNOT";
  let target = edge_of_cnot g in
  let independent = Device.cnot_error device target in
  let gt = Device.ground_truth device in
  (* Crosstalk accumulates while the spectator's drive is actually on:
     the conditional excess is weighted by the overlapped fraction of
     the target gate.  The worst overlapping partner dominates;
     simultaneous triplets do not compound further (the paper's
     observation behind eq. 6). *)
  let t_start = Schedule.start sched id and t_finish = Schedule.finish sched id in
  let duration = max 1.0 (t_finish -. t_start) in
  let excess =
    List.fold_left
      (fun acc other ->
        if other.Gate.id <> id && Gate.is_two_qubit other && Schedule.overlaps sched id other.Gate.id
        then
          let spectator = edge_of_cnot other in
          match Crosstalk.conditional gt ~target ~spectator with
          | Some conditional ->
            let o_start = max t_start (Schedule.start sched other.Gate.id) in
            let o_finish = min t_finish (Schedule.finish sched other.Gate.id) in
            let fraction = max 0.0 (o_finish -. o_start) /. duration in
            max acc (fraction *. max 0.0 (conditional -. independent))
          | None -> acc
        else acc)
      0.0 (Circuit.gates circuit)
  in
  min 0.75 (independent +. excess)

(* A trajectory-level simulator interface over the two backends. *)
type sim =
  | Tab of Tableau.t
  | Vec of State.t

let apply_pauli sim p q =
  match sim with Tab t -> Tableau.apply_pauli t p q | Vec v -> State.apply_pauli v p q

let apply_gate sim kind qubits =
  match (sim, kind, qubits) with
  | Tab t, Gate.H, [ q ] -> Tableau.h t q
  | Tab t, Gate.X, [ q ] -> Tableau.x t q
  | Tab t, Gate.Y, [ q ] -> Tableau.y t q
  | Tab t, Gate.Z, [ q ] -> Tableau.z t q
  | Tab t, Gate.S, [ q ] -> Tableau.s t q
  | Tab t, Gate.Sdg, [ q ] -> Tableau.sdg t q
  | Tab t, Gate.Cnot, [ c; tg ] -> Tableau.cnot t ~control:c ~target:tg
  | Tab t, Gate.Swap, [ a; b ] -> Tableau.swap t a b
  | Tab _, (Gate.T | Gate.Tdg | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.U2 _), _ ->
    invalid_arg
      (Printf.sprintf "Exec: non-Clifford gate %s on stabilizer backend" (Gate.kind_name kind))
  | Vec v, Gate.H, [ q ] -> State.h v q
  | Vec v, Gate.X, [ q ] -> State.x v q
  | Vec v, Gate.Y, [ q ] -> State.y v q
  | Vec v, Gate.Z, [ q ] -> State.z v q
  | Vec v, Gate.S, [ q ] -> State.s v q
  | Vec v, Gate.Sdg, [ q ] -> State.sdg v q
  | Vec v, Gate.T, [ q ] -> State.apply1 v Gates.t q
  | Vec v, Gate.Tdg, [ q ] -> State.apply1 v Gates.tdg q
  | Vec v, Gate.Rx theta, [ q ] -> State.apply1 v (Gates.rx theta) q
  | Vec v, Gate.Ry theta, [ q ] -> State.apply1 v (Gates.ry theta) q
  | Vec v, Gate.Rz theta, [ q ] -> State.apply1 v (Gates.rz theta) q
  | Vec v, Gate.U2 (phi, lam), [ q ] -> State.apply1 v (Gates.u2 phi lam) q
  | Vec v, Gate.Cnot, [ c; tg ] -> State.cnot v ~control:c ~target:tg
  | Vec v, Gate.Swap, [ a; b ] ->
    State.cnot v ~control:a ~target:b;
    State.cnot v ~control:b ~target:a;
    State.cnot v ~control:a ~target:b
  | _, (Gate.Barrier | Gate.Measure), _ -> ()
  | _ -> invalid_arg "Exec: malformed gate operands"

let measure_sim sim rng q =
  match sim with Tab t -> Tableau.measure t rng q | Vec v -> State.measure v rng q

(* Precomputed per-gate noise plan, shared across trials. *)
type gate_plan = {
  gate : Gate.t;
  compact_qubits : int list;
  start : float;
  error_p : float;  (** depolarizing parameter to inject after the gate *)
  idles : (int * int * Channel.idle) list;
      (** (hardware qubit, compact qubit, channel) for the gap before this gate *)
}

let build_plans device sched =
  let circuit = Schedule.circuit sched in
  let cal = Device.calibration device in
  let used = Circuit.used_qubits circuit in
  let compact = Hashtbl.create 16 in
  List.iteri (fun i q -> Hashtbl.add compact q i) used;
  let cq q = Hashtbl.find compact q in
  let last_end = Hashtbl.create 16 in
  (* Decoherence starts at a qubit's first gate: no idle before it. *)
  let plans =
    List.filter_map
      (fun g ->
        if Gate.is_barrier g then None
        else begin
          let id = g.Gate.id in
          let start = Schedule.start sched id in
          let idles =
            List.filter_map
              (fun q ->
                match Hashtbl.find_opt last_end q with
                | Some t0 when start > t0 +. 1e-9 ->
                  let qc = Calibration.qubit cal q in
                  Some
                    ( q,
                      cq q,
                      Channel.idle_channel ~t1:qc.Calibration.t1 ~t2:qc.Calibration.t2
                        ~duration:(start -. t0) )
                | Some _ | None -> None)
              g.Gate.qubits
          in
          List.iter (fun q -> Hashtbl.replace last_end q (Schedule.finish sched id)) g.Gate.qubits;
          let error_p =
            if Gate.is_two_qubit g then
              Channel.depol_param_of_error_rate ~nqubits:2 (effective_cnot_error device sched id)
            else if Gate.is_single_qubit g then
              let q = List.hd g.Gate.qubits in
              Channel.depol_param_of_error_rate ~nqubits:1
                (Calibration.qubit cal q).Calibration.single_qubit_error
            else 0.0
          in
          Some { gate = g; compact_qubits = List.map cq g.Gate.qubits; start; error_p; idles }
        end)
      (Schedule.gates_by_start sched)
  in
  (used, plans)

let run device sched ~rng ~trials ~backend =
  let circuit = Schedule.circuit sched in
  (match Schedule.validate sched with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Exec.run: invalid schedule: " ^ msg));
  let used, plans = build_plans device sched in
  let nused = List.length used in
  let cal = Device.calibration device in
  let measured = measured_qubits circuit in
  let counts = { table = Hashtbl.create 64; total = 0 } in
  for _ = 1 to trials do
    let sim =
      match backend with
      | Stabilizer -> Tab (Tableau.create (max nused 1))
      | Statevector -> Vec (State.create (max nused 1))
    in
    let bits = Hashtbl.create 8 in
    List.iter
      (fun plan ->
        List.iter
          (fun (_, cqubit, idle) ->
            match Channel.sample_idle rng idle with
            | Some p -> apply_pauli sim p cqubit
            | None -> ())
          plan.idles;
        if Gate.is_measure plan.gate then begin
          let hw = List.hd plan.gate.Gate.qubits in
          let cqubit = List.hd plan.compact_qubits in
          let bit = measure_sim sim rng cqubit in
          let ro = (Calibration.qubit cal hw).Calibration.readout_error in
          let bit = if Rng.bernoulli rng ro then not bit else bit in
          Hashtbl.replace bits hw bit
        end
        else begin
          apply_gate sim plan.gate.Gate.kind plan.compact_qubits;
          if plan.error_p > 0.0 then
            match plan.compact_qubits with
            | [ q ] -> (
              match Channel.sample_depolarizing1 rng ~p:plan.error_p with
              | Some p -> apply_pauli sim p q
              | None -> ())
            | [ a; b ] -> (
              match Channel.sample_depolarizing2 rng ~p:plan.error_p with
              | Some (pa, pb) ->
                Option.iter (fun p -> apply_pauli sim p a) pa;
                Option.iter (fun p -> apply_pauli sim p b) pb
              | None -> ())
            | _ -> ()
        end)
      plans;
    let bitstring =
      String.concat ""
        (List.map
           (fun q ->
             match Hashtbl.find_opt bits q with
             | Some true -> "1"
             | Some false -> "0"
             | None -> "?")
           measured)
    in
    Hashtbl.replace counts.table bitstring (1 + counts_get counts bitstring);
    counts.total <- counts.total + 1
  done;
  counts

let run_distribution device sched ~rng ~trajectories =
  let circuit = Schedule.circuit sched in
  (match Schedule.validate sched with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Exec.run_distribution: invalid schedule: " ^ msg));
  let used, plans = build_plans device sched in
  let nused = List.length used in
  let cal = Device.calibration device in
  let measured = measured_qubits circuit in
  let nmeas = List.length measured in
  if nmeas > 12 then invalid_arg "Exec.run_distribution: too many measured qubits";
  let compact_of_hw =
    let tbl = Hashtbl.create 8 in
    List.iteri (fun i q -> Hashtbl.replace tbl q i) used;
    tbl
  in
  let meas_compact = List.map (Hashtbl.find compact_of_hw) measured in
  let dim = 1 lsl nmeas in
  let acc = Array.make dim 0.0 in
  for _ = 1 to trajectories do
    let sim = Vec (State.create (max nused 1)) in
    List.iter
      (fun plan ->
        List.iter
          (fun (_, cqubit, idle) ->
            match Channel.sample_idle rng idle with
            | Some p -> apply_pauli sim p cqubit
            | None -> ())
          plan.idles;
        if not (Gate.is_measure plan.gate) then begin
          apply_gate sim plan.gate.Gate.kind plan.compact_qubits;
          if plan.error_p > 0.0 then
            match plan.compact_qubits with
            | [ q ] -> (
              match Channel.sample_depolarizing1 rng ~p:plan.error_p with
              | Some p -> apply_pauli sim p q
              | None -> ())
            | [ a; b ] -> (
              match Channel.sample_depolarizing2 rng ~p:plan.error_p with
              | Some (pa, pb) ->
                Option.iter (fun p -> apply_pauli sim p a) pa;
                Option.iter (fun p -> apply_pauli sim p b) pb
              | None -> ())
            | _ -> ()
        end)
      plans;
    let state = match sim with Vec v -> v | Tab _ -> assert false in
    (* Marginalize |amp|^2 onto the measured qubits. *)
    let full = State.probabilities state in
    Array.iteri
      (fun k p ->
        if p > 0.0 then begin
          let idx = ref 0 in
          List.iteri
            (fun i cq -> if (k lsr cq) land 1 = 1 then idx := !idx lor (1 lsl i))
            meas_compact;
          acc.(!idx) <- acc.(!idx) +. p
        end)
      full
  done;
  let scale = 1.0 /. float_of_int (max 1 trajectories) in
  let clean = Array.map (fun p -> p *. scale) acc in
  (* Apply readout confusion analytically: independent per-qubit
     flips. *)
  let flips =
    List.map (fun q -> (Calibration.qubit cal q).Calibration.readout_error) measured
  in
  let confused = Array.make dim 0.0 in
  for truth = 0 to dim - 1 do
    if clean.(truth) > 0.0 then
      for observed = 0 to dim - 1 do
        let p = ref clean.(truth) in
        List.iteri
          (fun i flip ->
            let same = (truth lsr i) land 1 = (observed lsr i) land 1 in
            p := !p *. (if same then 1.0 -. flip else flip))
          flips;
        confused.(observed) <- confused.(observed) +. !p
      done
  done;
  List.init dim (fun k ->
      ( String.init nmeas (fun i -> if (k lsr i) land 1 = 1 then '1' else '0'),
        confused.(k) ))

let run_ideal circuit =
  let used = Circuit.used_qubits circuit in
  let compact = Hashtbl.create 16 in
  List.iteri (fun i q -> Hashtbl.add compact q i) used;
  let state = State.create (max (List.length used) 1) in
  List.iter
    (fun g ->
      if Gate.is_unitary g then
        apply_gate (Vec state) g.Gate.kind (List.map (Hashtbl.find compact) g.Gate.qubits))
    (Circuit.gates circuit);
  (state, used)
