(** A complete device model: coupling graph, daily calibration data,
    and the hidden ground-truth crosstalk.

    The ground truth plays the role of the physical hardware: only the
    noise engine ([Qcx_noise.Exec]) may consult it.  Compiler-side code
    (characterization, scheduling) must work from calibration data and
    from crosstalk estimates it measures itself — that separation is
    the point of the paper's pipeline and is preserved here. *)

type t

val create :
  name:string ->
  topology:Topology.t ->
  calibration:Calibration.t ->
  ground_truth:Crosstalk.t ->
  t

val name : t -> string
val topology : t -> Topology.t
val calibration : t -> Calibration.t

val ground_truth : t -> Crosstalk.t
(** The hardware's true conditional error rates.  Reserved for the
    noise engine and for test oracles; production compiler code paths
    must not read it. *)

val nqubits : t -> int

val with_calibration : t -> Calibration.t -> t
val with_ground_truth : t -> Crosstalk.t -> t

val cnot_duration : t -> Topology.edge -> float
val cnot_error : t -> Topology.edge -> float
(** Independent error rate from calibration. *)

val true_high_crosstalk_pairs :
  t -> threshold:float -> (Topology.edge * Topology.edge) list
(** Oracle view of high-crosstalk pairs (for tests and for seeding the
    "periodically characterized" baseline of Optimization 3). *)
