type t = {
  name : string;
  topology : Topology.t;
  calibration : Calibration.t;
  ground_truth : Crosstalk.t;
}

let create ~name ~topology ~calibration ~ground_truth =
  if Calibration.nqubits calibration <> Topology.nqubits topology then
    invalid_arg "Device.create: calibration / topology qubit count mismatch";
  List.iter
    (fun e ->
      match Calibration.gate_opt calibration e with
      | Some _ -> ()
      | None ->
        let a, b = e in
        invalid_arg (Printf.sprintf "Device.create: edge (%d,%d) lacks calibration" a b))
    (Topology.edges topology);
  { name; topology; calibration; ground_truth }

let name t = t.name
let topology t = t.topology
let calibration t = t.calibration
let ground_truth t = t.ground_truth
let nqubits t = Topology.nqubits t.topology
let with_calibration t calibration = { t with calibration }
let with_ground_truth t ground_truth = { t with ground_truth }

let cnot_duration t e = (Calibration.gate t.calibration e).Calibration.cnot_duration
let cnot_error t e = (Calibration.gate t.calibration e).Calibration.cnot_error

let true_high_crosstalk_pairs t ~threshold =
  Crosstalk.high_crosstalk_pairs t.ground_truth t.calibration ~threshold
