module Rng = Qcx_util.Rng
module Stats = Qcx_util.Stats

let seed_of device ~day = Hashtbl.hash (Device.name device, day, "drift")

let lognormal rng ~sigma = exp (Rng.gaussian rng ~mu:0.0 ~sigma)

let on_day device ~day =
  if day = 0 then device
  else begin
    let rng = Rng.create (seed_of device ~day) in
    let cal = Device.calibration device in
    let topology = Device.topology device in
    (* Perturb per-qubit data. *)
    let cal =
      List.fold_left
        (fun acc q ->
          let qc = Calibration.qubit acc q in
          let f () = Stats.clamp ~lo:0.85 ~hi:1.15 (lognormal rng ~sigma:0.07) in
          Calibration.with_qubit acc q
            {
              qc with
              Calibration.t1 = qc.Calibration.t1 *. f ();
              t2 = qc.Calibration.t2 *. f ();
              readout_error = Stats.clamp ~lo:0.005 ~hi:0.2 (qc.Calibration.readout_error *. f ());
            })
        cal
        (List.init (Calibration.nqubits cal) Fun.id)
    in
    (* Perturb independent CNOT errors. *)
    let cal =
      List.fold_left
        (fun acc e ->
          let g = Calibration.gate acc e in
          let f = Stats.clamp ~lo:0.75 ~hi:1.25 (lognormal rng ~sigma:0.12) in
          Calibration.with_gate acc e
            {
              g with
              Calibration.cnot_error = Stats.clamp ~lo:0.002 ~hi:0.08 (g.Calibration.cnot_error *. f);
            })
        cal (Topology.edges topology)
    in
    (* Perturb conditional rates with a wider spread: the observed
       day-to-day range of E(gi|gj) reaches 2-3x (Fig. 4). *)
    let gt =
      List.fold_left
        (fun acc (target, spectator, rate) ->
          let f = Stats.clamp ~lo:0.55 ~hi:1.8 (lognormal rng ~sigma:0.25) in
          Crosstalk.set acc ~target ~spectator (Stats.clamp ~lo:0.0 ~hi:0.6 (rate *. f)))
        Crosstalk.empty
        (Crosstalk.entries (Device.ground_truth device))
    in
    Device.with_ground_truth (Device.with_calibration device cal) gt
  end

let series device ~days = List.init days (fun day -> on_day device ~day)
