type qubit_cal = {
  t1 : float;
  t2 : float;
  readout_error : float;
  single_qubit_error : float;
  single_qubit_duration : float;
  readout_duration : float;
}

type gate_cal = { cnot_error : float; cnot_duration : float }

module EdgeMap = Map.Make (struct
  type t = Topology.edge

  let compare = compare
end)

type t = { qubits : qubit_cal array; gates : gate_cal EdgeMap.t }

let create ~qubits ~gates =
  let m =
    List.fold_left
      (fun acc (e, cal) -> EdgeMap.add (Topology.normalize e) cal acc)
      EdgeMap.empty gates
  in
  { qubits; gates = m }

let nqubits t = Array.length t.qubits

let qubit t q =
  if q < 0 || q >= Array.length t.qubits then invalid_arg "Calibration.qubit: out of range";
  t.qubits.(q)

let gate_opt t e = EdgeMap.find_opt (Topology.normalize e) t.gates

let gate t e =
  match gate_opt t e with
  | Some cal -> cal
  | None ->
    let a, b = e in
    invalid_arg (Printf.sprintf "Calibration.gate: no CNOT on (%d, %d)" a b)

let coherence_limit t q =
  let cal = qubit t q in
  min cal.t1 cal.t2

let with_gate t e cal = { t with gates = EdgeMap.add (Topology.normalize e) cal t.gates }

let with_qubit t q cal =
  let qubits = Array.copy t.qubits in
  qubits.(q) <- cal;
  { t with qubits }

let average_cnot_error t =
  let vals = List.map (fun (_, c) -> c.cnot_error) (EdgeMap.bindings t.gates) in
  Qcx_util.Stats.mean vals

let average_t1 t = Qcx_util.Stats.mean (Array.to_list (Array.map (fun q -> q.t1) t.qubits))
