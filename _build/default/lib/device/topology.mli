(** Device coupling graph.

    Nodes are physical qubits; edges are the qubit pairs on which the
    hardware implements CNOT gates.  Also provides the hop distances
    between gates (edges) that drive the paper's characterization
    optimizations: crosstalk is significant only between gates at
    1-hop separation, and SRB experiments for gate pairs at >= 2 hops
    can run in parallel. *)

type edge = int * int
(** Normalized: smaller qubit first.  Use {!normalize}. *)

type t

val create : nqubits:int -> edges:(int * int) list -> t
(** Raises [Invalid_argument] on out-of-range endpoints, self loops or
    duplicate edges. *)

val nqubits : t -> int
val edges : t -> edge list
(** Sorted, normalized. *)

val normalize : int * int -> edge
val has_edge : t -> int * int -> bool
val neighbors : t -> int -> int list
val degree : t -> int -> int

val qubit_distance : t -> int -> int -> int
(** BFS hop distance; [max_int] when disconnected. *)

val shortest_path : t -> int -> int -> int list
(** Qubit sequence from source to destination inclusive; [] when
    disconnected.  Deterministic (lowest-qubit tie break). *)

val gate_distance : t -> edge -> edge -> int
(** Distance between two gates: the minimum qubit distance over their
    endpoint pairs.  Gates sharing a qubit have distance 0; adjacent
    gates (as in the paper's "separated by 1 hop") have distance 1. *)

val parallel_gate_pairs : t -> (edge * edge) list
(** All unordered pairs of CNOT gates that can be driven in parallel,
    i.e. that do not share a qubit.  This is the paper's all-pairs SRB
    candidate set (221 pairs on IBMQ Poughkeepsie). *)

val one_hop_gate_pairs : t -> (edge * edge) list
(** The subset of {!parallel_gate_pairs} at gate distance exactly 1 —
    characterization Optimization 1. *)
