module PairMap = Map.Make (struct
  type t = Topology.edge * Topology.edge

  let compare = compare
end)

type t = float PairMap.t

let empty = PairMap.empty

let key ~target ~spectator = (Topology.normalize target, Topology.normalize spectator)

let set t ~target ~spectator rate =
  if rate < 0.0 || rate > 1.0 then invalid_arg "Crosstalk.set: rate out of [0,1]";
  PairMap.add (key ~target ~spectator) rate t

let set_symmetric t e1 e2 r1 r2 =
  let t = set t ~target:e1 ~spectator:e2 r1 in
  set t ~target:e2 ~spectator:e1 r2

let conditional t ~target ~spectator = PairMap.find_opt (key ~target ~spectator) t

let conditional_or_independent t cal ~target ~spectator =
  match conditional t ~target ~spectator with
  | Some r -> r
  | None -> (Calibration.gate cal target).Calibration.cnot_error

let entries t = List.map (fun ((tg, sp), r) -> (tg, sp, r)) (PairMap.bindings t)

let unordered (a, b) = if a <= b then (a, b) else (b, a)

let interacting_pairs t =
  List.sort_uniq compare (List.map (fun ((tg, sp), _) -> unordered (tg, sp)) (PairMap.bindings t))

let high_crosstalk_pairs t cal ~threshold =
  let flagged =
    List.filter_map
      (fun ((target, spectator), rate) ->
        match Calibration.gate_opt cal target with
        | Some g when rate > threshold *. g.Calibration.cnot_error ->
          Some (unordered (target, spectator))
        | Some _ | None -> None)
      (PairMap.bindings t)
  in
  List.sort_uniq compare flagged

let max_ratio t cal =
  PairMap.fold
    (fun (target, _) rate acc ->
      match Calibration.gate_opt cal target with
      | Some g when g.Calibration.cnot_error > 0.0 -> max acc (rate /. g.Calibration.cnot_error)
      | Some _ | None -> acc)
    t 0.0

let restrict t keep =
  let keep = List.map unordered keep in
  PairMap.filter (fun (tg, sp) _ -> List.mem (unordered (tg, sp)) keep) t

let merge older newer = PairMap.union (fun _ _ newest -> Some newest) older newer
