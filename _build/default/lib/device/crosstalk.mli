(** Conditional (crosstalk) error rates for simultaneously driven
    CNOT pairs.

    A value [E(target|spectator)] is the error rate of the CNOT on
    edge [target] when the CNOT on edge [spectator] runs at the same
    time.  The same type serves two roles:

    - the device's hidden {e ground truth}, consumed only by the noise
      engine when executing circuits (the "physics"); and
    - the {e characterized} data estimated by SRB experiments, which is
      what the scheduler is allowed to use.

    Keeping the two in the same representation lets tests compare the
    characterization output against truth directly. *)

type t

val empty : t

val set : t -> target:Topology.edge -> spectator:Topology.edge -> float -> t
(** Record [E(target|spectator)].  Edges are normalized. *)

val set_symmetric : t -> Topology.edge -> Topology.edge -> float -> float -> t
(** [set_symmetric t e1 e2 r1 r2] records [E(e1|e2) = r1] and
    [E(e2|e1) = r2]. *)

val conditional : t -> target:Topology.edge -> spectator:Topology.edge -> float option

val conditional_or_independent :
  t -> Calibration.t -> target:Topology.edge -> spectator:Topology.edge -> float
(** Falls back to the independent rate when no conditional entry
    exists (i.e. the pair has no significant crosstalk). *)

val entries : t -> (Topology.edge * Topology.edge * float) list
(** All ordered (target, spectator, rate) entries. *)

val interacting_pairs : t -> (Topology.edge * Topology.edge) list
(** Unordered pairs with at least one conditional entry. *)

val high_crosstalk_pairs :
  t -> Calibration.t -> threshold:float -> (Topology.edge * Topology.edge) list
(** Unordered pairs where some direction satisfies
    [E(gi|gj) > threshold * E(gi)] — the paper flags pairs at
    threshold 3 in Figure 3. *)

val max_ratio : t -> Calibration.t -> float
(** Worst conditional/independent ratio over all entries (the paper
    reports up to 11x). *)

val restrict : t -> (Topology.edge * Topology.edge) list -> t
(** Keep only entries whose unordered pair appears in the list. *)

val merge : t -> t -> t
(** Right-biased union — used when refreshing only high-crosstalk
    pairs (Optimization 3) on top of an older full characterization. *)
