(** Day-to-day drift of device noise.

    The paper observes (Figure 4) that conditional error rates vary up
    to 2–3x across days while the *set* of high-crosstalk pairs stays
    stable — which is what justifies characterization Optimization 3
    (daily re-measurement of high-crosstalk pairs only).  This module
    produces the device "as it looks on day [d]": a deterministic
    perturbation of calibration values and ground-truth conditional
    rates keyed on (device name, day). *)

val on_day : Device.t -> day:int -> Device.t
(** [on_day device ~day] perturbs, multiplicatively and
    deterministically:
    - conditional crosstalk rates by a lognormal factor (sigma such
      that the observed day-to-day spread reaches 2–3x),
    - independent CNOT error rates by up to about +/-25%,
    - T1/T2 and readout errors by up to about +/-15%.
    [day = 0] returns the device unchanged. *)

val series : Device.t -> days:int -> Device.t list
(** [series device ~days] is [on_day] for days [0 .. days-1]. *)
