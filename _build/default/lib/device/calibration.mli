(** Daily calibration data, as published by IBM for its devices.

    Everything the compiler is allowed to read for free: independent
    gate error rates, gate durations, per-qubit coherence times and
    readout errors.  Conditional (crosstalk) error rates are *not*
    part of daily calibration — obtaining them is the subject of the
    paper's characterization module. *)

type qubit_cal = {
  t1 : float;  (** relaxation time, ns *)
  t2 : float;  (** dephasing time, ns *)
  readout_error : float;  (** probability of misreading this qubit *)
  single_qubit_error : float;  (** error rate of a 1q basis gate *)
  single_qubit_duration : float;  (** ns *)
  readout_duration : float;  (** ns *)
}

type gate_cal = {
  cnot_error : float;  (** independent CNOT error rate *)
  cnot_duration : float;  (** ns *)
}

type t

val create : qubits:qubit_cal array -> gates:(Topology.edge * gate_cal) list -> t

val nqubits : t -> int
val qubit : t -> int -> qubit_cal
val gate : t -> Topology.edge -> gate_cal
(** Raises [Invalid_argument] for an unknown edge. *)

val gate_opt : t -> Topology.edge -> gate_cal option

val coherence_limit : t -> int -> float
(** [min t1 t2] of a qubit — the paper's [q.T] (constraint 10 uses the
    minimum to cover qubits whose T2 is far below T1). *)

val with_gate : t -> Topology.edge -> gate_cal -> t
(** Functional update of one gate's calibration. *)

val with_qubit : t -> int -> qubit_cal -> t

val average_cnot_error : t -> float
val average_t1 : t -> float
