lib/device/topology.ml: Array List Queue
