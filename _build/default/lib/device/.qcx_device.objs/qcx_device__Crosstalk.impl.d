lib/device/crosstalk.ml: Calibration List Map Topology
