lib/device/device.mli: Calibration Crosstalk Topology
