lib/device/calibration.ml: Array List Map Printf Qcx_util Topology
