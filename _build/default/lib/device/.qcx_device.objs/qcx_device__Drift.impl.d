lib/device/drift.ml: Calibration Crosstalk Device Fun Hashtbl List Qcx_util Topology
