lib/device/crosstalk.mli: Calibration Topology
