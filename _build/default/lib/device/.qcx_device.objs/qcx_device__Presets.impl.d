lib/device/presets.ml: Array Calibration Crosstalk Device Fun List Printf Qcx_util String Topology
