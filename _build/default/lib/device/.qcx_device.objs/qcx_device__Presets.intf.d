lib/device/presets.mli: Device
