lib/device/topology.mli:
