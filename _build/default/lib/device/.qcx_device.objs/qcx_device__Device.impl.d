lib/device/device.ml: Calibration Crosstalk List Printf Topology
