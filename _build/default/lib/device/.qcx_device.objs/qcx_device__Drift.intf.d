lib/device/drift.mli: Device
