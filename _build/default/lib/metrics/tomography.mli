(** Two-qubit state tomography (the Figure 5/7 measurement protocol:
    9 basis pairs x 1024 trials, with readout mitigation).

    For each of the nine Pauli basis pairs {X,Y,Z}^2, the input
    circuit is extended with basis-change rotations on the target
    qubits and measurements on every used qubit, scheduled by the
    caller-supplied scheduler (so tomography quality reflects the
    scheduler under test), executed on the noisy device, and the
    two-qubit marginal is readout-mitigated.  The fidelity against
    the ideal |Phi+> Bell state follows by linear inversion from the
    measured expectations ([F = (1 + <XX> - <YY> + <ZZ>) / 4]); the
    reported error is [1 - F]. *)

type result = {
  fidelity : float;
  error : float;  (** 1 - fidelity; the Figure 5 "measured error rate" *)
  expectations : ((char * char) * float) list;
      (** the nine measured two-qubit Pauli expectation values *)
}

val bell_state :
  Qcx_device.Device.t ->
  rng:Qcx_util.Rng.t ->
  trials_per_basis:int ->
  schedule:(Qcx_circuit.Circuit.t -> Qcx_circuit.Schedule.t) ->
  circuit:Qcx_circuit.Circuit.t ->
  pair:int * int ->
  result
(** [circuit] must be measurement-free and leave (ideally) a |Phi+>
    Bell pair on [pair].  Uses the stabilizer backend — the input
    circuit must be Clifford (true for all SWAP-path circuits). *)

val fidelity_phi_plus : ((char * char) * float) list -> float
(** [ (1 + <XX> - <YY> + <ZZ>) / 4 ] from a 9-basis expectation list;
    exposed for tests. *)
