(** Tensored readout-error mitigation (Section 8.4's "readout error
    mitigation [25] is used in all cases").

    Each qubit's readout is modelled by a 2x2 confusion matrix; the
    observed distribution over a small set of measured qubits is
    multiplied by the inverse of the tensor product of those matrices.
    Negative corrected probabilities (a known artifact of linear
    inversion) are clipped and the vector renormalized. *)

val confusion1 : flip:float -> float array array
(** Symmetric single-qubit confusion matrix [ [1-f, f], [f, 1-f] ]. *)

val mitigate :
  flips:float list ->
  counts:(string * int) list ->
  (string * float) list
(** [mitigate ~flips ~counts] corrects a distribution over bitstrings
    (one character per measured qubit, in the same order as [flips]).
    Returns a normalized probability list covering all 2^n strings. *)

val mitigate_for_device :
  Qcx_device.Device.t ->
  measured:int list ->
  counts:(string * int) list ->
  (string * float) list
(** Convenience wrapper: per-qubit flip probabilities from the
    device's calibration. *)
