(** Cross entropy between a measured distribution and the ideal
    noise-free distribution (the QAOA metric of Section 9.2).

    [ce = - sum_x p_ideal(x) ln p_measured(x)] — equal to the ideal
    distribution's Shannon entropy when the measurement is perfect,
    and growing as noise flattens the output (lower is better,
    Figure 8).  Measured probabilities are Laplace-smoothed so empty
    bins do not blow up the logarithm. *)

val entropy : float array -> float
(** Shannon entropy (nats) of a probability vector — the "Theoretical
    Ideal (Noise Free)" line of Figure 8. *)

val against_ideal :
  ideal:float array ->
  measured:(string * float) list ->
  float
(** [ideal] is indexed by basis-state integer; measured bitstrings use
    the leftmost character as the lowest-indexed measured qubit
    (the [Qcx_noise.Exec] convention).  Both must cover the same
    number of qubits. *)

val loss : ideal_entropy:float -> float -> float
(** [ce - ideal_entropy]: the "loss in cross entropy" the paper
    reports improvement factors on. *)
