let entropy p =
  Array.fold_left (fun acc x -> if x > 0.0 then acc -. (x *. log x) else acc) 0.0 p

let index_of_bits bits =
  (* leftmost char = lowest-indexed measured qubit = bit 0 *)
  let n = String.length bits in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if bits.[i] = '1' then k := !k lor (1 lsl i)
  done;
  !k

let against_ideal ~ideal ~measured =
  let dim = Array.length ideal in
  let probs = Array.make dim 0.0 in
  List.iter
    (fun (bits, p) ->
      let idx = index_of_bits bits in
      if idx >= dim then invalid_arg "Cross_entropy.against_ideal: dimension mismatch";
      probs.(idx) <- probs.(idx) +. p)
    measured;
  (* Laplace smoothing on the measured distribution. *)
  let alpha = 1e-4 in
  let z = Array.fold_left ( +. ) 0.0 probs +. (alpha *. float_of_int dim) in
  let smoothed = Array.map (fun p -> (p +. alpha) /. z) probs in
  let acc = ref 0.0 in
  Array.iteri (fun i pi -> if pi > 0.0 then acc := !acc -. (pi *. log smoothed.(i))) ideal;
  !acc

let loss ~ideal_entropy ce = ce -. ideal_entropy
