lib/metrics/tomography.ml: Hashtbl List Option Printf Qcx_circuit Qcx_device Qcx_noise Qcx_util Readout_mitigation String
