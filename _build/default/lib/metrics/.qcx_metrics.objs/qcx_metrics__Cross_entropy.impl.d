lib/metrics/cross_entropy.ml: Array List String
