lib/metrics/tomography.mli: Qcx_circuit Qcx_device Qcx_util
