lib/metrics/cross_entropy.mli:
