lib/metrics/readout_mitigation.mli: Qcx_device
