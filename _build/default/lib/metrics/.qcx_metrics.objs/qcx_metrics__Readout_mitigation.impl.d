lib/metrics/readout_mitigation.ml: Array List Option Qcx_device Qcx_linalg String
