module Mat = Qcx_linalg.Mat
module Device = Qcx_device.Device
module Calibration = Qcx_device.Calibration

let confusion1 ~flip = [| [| 1.0 -. flip; flip |]; [| flip; 1.0 -. flip |] |]

(* Probability that true bitstring [t] is read as [o] under independent
   per-qubit flips. *)
let transition flips ~truth ~observed =
  List.fold_left
    (fun acc (i, flip) ->
      let same = truth.[i] = observed.[i] in
      acc *. (if same then 1.0 -. flip else flip))
    1.0
    (List.mapi (fun i f -> (i, f)) flips)

let all_strings n =
  List.init (1 lsl n) (fun k ->
      String.init n (fun i -> if (k lsr (n - 1 - i)) land 1 = 1 then '1' else '0'))

let mitigate ~flips ~counts =
  let n = List.length flips in
  if n > 12 then invalid_arg "Readout_mitigation.mitigate: too many qubits";
  List.iter
    (fun (s, _) ->
      if String.length s <> n then invalid_arg "Readout_mitigation.mitigate: bitstring length")
    counts;
  let strings = all_strings n in
  let total = float_of_int (max 1 (List.fold_left (fun acc (_, c) -> acc + c) 0 counts)) in
  let observed =
    Array.of_list
      (List.map
         (fun s ->
           float_of_int (Option.value ~default:0 (List.assoc_opt s counts)) /. total)
         strings)
  in
  (* Solve M p = observed where M.(o).(t) = P(read o | truth t). *)
  let dim = 1 lsl n in
  let strings_arr = Array.of_list strings in
  let m =
    Array.init dim (fun o ->
        Array.init dim (fun t ->
            transition flips ~truth:strings_arr.(t) ~observed:strings_arr.(o)))
  in
  let corrected = Mat.real_solve m observed in
  (* Clip negatives and renormalize. *)
  let clipped = Array.map (fun p -> max 0.0 p) corrected in
  let z = Array.fold_left ( +. ) 0.0 clipped in
  let z = if z <= 0.0 then 1.0 else z in
  List.mapi (fun i s -> (s, clipped.(i) /. z)) strings

let mitigate_for_device device ~measured ~counts =
  let cal = Device.calibration device in
  let flips =
    List.map (fun q -> (Calibration.qubit cal q).Calibration.readout_error) measured
  in
  mitigate ~flips ~counts
