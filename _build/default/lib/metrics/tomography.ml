module Circuit = Qcx_circuit.Circuit
module Schedule = Qcx_circuit.Schedule
module Device = Qcx_device.Device
module Calibration = Qcx_device.Calibration
module Exec = Qcx_noise.Exec
module Rng = Qcx_util.Rng

type result = {
  fidelity : float;
  error : float;
  expectations : ((char * char) * float) list;
}

let bases = [ 'Z'; 'X'; 'Y' ]

let rotate_into_basis c basis q =
  match basis with
  | 'Z' -> c
  | 'X' -> Circuit.h c q
  | 'Y' -> Circuit.h (Circuit.sdg c q) q
  | _ -> invalid_arg "Tomography: unknown basis"

(* Marginal distribution over the two pair qubits, readout-mitigated. *)
let marginal device counts ~measured ~pair:(a, b) =
  let ia = ref (-1) and ib = ref (-1) in
  List.iteri
    (fun i q ->
      if q = a then ia := i;
      if q = b then ib := i)
    measured;
  if !ia < 0 || !ib < 0 then invalid_arg "Tomography: pair not measured";
  let tally = Hashtbl.create 4 in
  List.iter
    (fun (bits, n) ->
      let key = Printf.sprintf "%c%c" bits.[!ia] bits.[!ib] in
      Hashtbl.replace tally key (n + Option.value ~default:0 (Hashtbl.find_opt tally key)))
    (Exec.counts_bindings counts);
  let counts2 = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tally [] in
  let cal = Device.calibration device in
  let flips =
    [
      (Calibration.qubit cal a).Calibration.readout_error;
      (Calibration.qubit cal b).Calibration.readout_error;
    ]
  in
  Readout_mitigation.mitigate ~flips ~counts:counts2

let expectation dist =
  (* <P (x) Q> = sum over outcomes of (-1)^(b1 + b2) p *)
  List.fold_left
    (fun acc (bits, p) ->
      let sign = if bits.[0] = bits.[1] then 1.0 else -1.0 in
      acc +. (sign *. p))
    0.0 dist

let fidelity_phi_plus expectations =
  let get key = Option.value ~default:0.0 (List.assoc_opt key expectations) in
  (1.0 +. get ('X', 'X') -. get ('Y', 'Y') +. get ('Z', 'Z')) /. 4.0

let bell_state device ~rng ~trials_per_basis ~schedule ~circuit ~pair =
  let a, b = pair in
  let expectations =
    List.concat_map
      (fun ba ->
        List.map
          (fun bb ->
            let c = rotate_into_basis circuit ba a in
            let c = rotate_into_basis c bb b in
            let c = Circuit.measure_all c in
            let sched = schedule c in
            let counts =
              Exec.run device sched ~rng ~trials:trials_per_basis ~backend:Exec.Stabilizer
            in
            let measured = Exec.measured_qubits c in
            let dist = marginal device counts ~measured ~pair in
            ((ba, bb), expectation dist))
          bases)
      bases
  in
  let fidelity = Qcx_util.Stats.clamp ~lo:0.0 ~hi:1.0 (fidelity_phi_plus expectations) in
  { fidelity; error = 1.0 -. fidelity; expectations }
