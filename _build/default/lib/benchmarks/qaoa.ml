module Circuit = Qcx_circuit.Circuit
module Device = Qcx_device.Device
module Topology = Qcx_device.Topology
module Rng = Qcx_util.Rng

type t = { circuit : Circuit.t; region : int list }

let check_line device region =
  if List.length region <> 4 then invalid_arg "Qaoa.build: region must have 4 qubits";
  let topo = Device.topology device in
  let rec ok = function
    | a :: (b :: _ as rest) -> Topology.has_edge topo (a, b) && ok rest
    | [ _ ] | [] -> true
  in
  if not (ok region) then invalid_arg "Qaoa.build: region is not a line on the device"

let build device ~rng ~region =
  check_line device region;
  let q = Array.of_list region in
  (* Small Ry amplitudes keep the ideal output distribution
     structured (entropy well below the uniform 2.77 nats), matching
     the paper's instances where the ideal cross entropy sits near
     1.4; Rz phases draw from the full circle. *)
  let ry_angle () = Rng.float rng 0.7 in
  let rz_angle () = Rng.float rng (2.0 *. Float.pi) in
  let rotations c =
    Array.fold_left
      (fun acc qubit -> Circuit.rz (Circuit.ry acc (ry_angle ()) qubit) (rz_angle ()) qubit)
      c q
  in
  let entangle c =
    (* Outer CNOTs first - they are logically independent and run in
       parallel; the middle CNOT depends on both. *)
    let c = Circuit.cnot c ~control:q.(0) ~target:q.(1) in
    let c = Circuit.cnot c ~control:q.(2) ~target:q.(3) in
    Circuit.cnot c ~control:q.(1) ~target:q.(2)
  in
  let c = Circuit.create (Device.nqubits device) in
  let c = rotations c in
  let c = entangle c in
  let c = rotations c in
  let c = entangle c in
  let c = rotations c in
  let c = entangle c in
  let c = rotations c in
  (* 4 rotation layers x 8 + 3 entangling layers x 3 = 41 unitaries,
     plus readout: 43 operations on 4 qubits, 9 CNOTs - the paper's
     instance size (Sec. 8.3) up to measurement accounting. *)
  let c = Circuit.measure_all c in
  { circuit = c; region }

let gate_count t = Circuit.length t.circuit
let two_qubit_count t = Circuit.two_qubit_count t.circuit
