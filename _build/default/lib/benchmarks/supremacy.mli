(** Quantum-supremacy-style random circuits (Section 9.4's scalability
    study).

    Layers of random single-qubit gates (from sqrt(X), sqrt(Y), T)
    interleaved with CNOT layers that cycle through a partition of the
    device subgraph's edges into matchings, following the structure of
    Boixo et al.  The instances are used only to stress the
    scheduler's compile time (6-18 qubits, 100-1000 gates); they are
    never simulated. *)

type t = {
  circuit : Qcx_circuit.Circuit.t;  (** measurements included *)
  qubits : int list;  (** hardware qubits used *)
}

val build :
  Qcx_device.Device.t ->
  rng:Qcx_util.Rng.t ->
  nqubits:int ->
  target_gates:int ->
  t
(** Selects a connected [nqubits]-qubit region (BFS from qubit 0) and
    emits layers until at least [target_gates] gates.  Raises
    [Invalid_argument] when the device is smaller than [nqubits]. *)
