lib/benchmarks/qaoa.mli: Qcx_circuit Qcx_device Qcx_util
