lib/benchmarks/swap_circuits.ml: List Qcx_circuit Qcx_device Qcx_scheduler
