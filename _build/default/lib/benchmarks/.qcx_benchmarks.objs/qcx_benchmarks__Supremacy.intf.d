lib/benchmarks/supremacy.mli: Qcx_circuit Qcx_device Qcx_util
