lib/benchmarks/swap_circuits.mli: Qcx_circuit Qcx_device
