lib/benchmarks/qaoa.ml: Array Float List Qcx_circuit Qcx_device Qcx_util
