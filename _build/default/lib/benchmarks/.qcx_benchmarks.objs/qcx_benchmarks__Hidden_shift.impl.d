lib/benchmarks/hidden_shift.ml: Array List Qcx_circuit Qcx_device String
