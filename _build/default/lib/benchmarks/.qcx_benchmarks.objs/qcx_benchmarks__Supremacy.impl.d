lib/benchmarks/supremacy.ml: Array Float Hashtbl List Qcx_circuit Qcx_device Qcx_util Queue
