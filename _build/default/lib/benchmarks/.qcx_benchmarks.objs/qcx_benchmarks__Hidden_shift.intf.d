lib/benchmarks/hidden_shift.mli: Qcx_circuit Qcx_device
