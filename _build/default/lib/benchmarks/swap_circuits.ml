module Circuit = Qcx_circuit.Circuit
module Dag = Qcx_circuit.Dag
module Device = Qcx_device.Device
module Topology = Qcx_device.Topology
module Routing = Qcx_scheduler.Routing
module Encoding = Qcx_scheduler.Encoding

type t = {
  circuit : Circuit.t;
  bell : int * int;
  src : int;
  dst : int;
  path_length : int;
}

let assemble device ~src ~dst (swaps, bell) =
  let path_length = Topology.qubit_distance (Device.topology device) src dst in
  let c = Circuit.create (Device.nqubits device) in
  let c = Circuit.h c src in
  let c = List.fold_left (fun acc (a, b) -> Circuit.swap acc a b) c swaps in
  let ba, bb = bell in
  let c = Circuit.cnot c ~control:ba ~target:bb in
  { circuit = Circuit.decompose_swaps c; bell; src; dst; path_length }

let build device ~src ~dst = assemble device ~src ~dst (Routing.meet_in_middle device ~src ~dst)

let build_aware device ~xtalk ?(threshold = 3.0) ?(penalty = 0.9) ~src ~dst () =
  assemble device ~src ~dst
    (Routing.meet_in_middle_aware device ~xtalk ~threshold ~penalty ~src ~dst ())

let swap_count t = (Circuit.two_qubit_count t.circuit - 1) / 3

let is_crosstalk_prone device ~xtalk ?(threshold = 3.0) t =
  let dag = Dag.of_circuit t.circuit in
  Encoding.interfering_instances ~device ~xtalk ~threshold ~dag <> []

let crosstalk_free_paths device ~xtalk ?(threshold = 3.0) ~length () =
  let topo = Device.topology device in
  let n = Topology.nqubits topo in
  let out = ref [] in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Topology.qubit_distance topo a b = length then begin
        let t = build device ~src:a ~dst:b in
        if not (is_crosstalk_prone device ~xtalk ~threshold t) then out := (a, b) :: !out
      end
    done
  done;
  List.rev !out
