module Circuit = Qcx_circuit.Circuit
module Device = Qcx_device.Device
module Topology = Qcx_device.Topology

type t = {
  circuit : Circuit.t;
  region : int list;
  shift : bool list;
  expected : string;
}

let check_line device region =
  if List.length region <> 4 then invalid_arg "Hidden_shift.build: region must have 4 qubits";
  let topo = Device.topology device in
  let rec ok = function
    | a :: (b :: _ as rest) -> Topology.has_edge topo (a, b) && ok rest
    | [ _ ] | [] -> true
  in
  if not (ok region) then invalid_arg "Hidden_shift.build: region is not a line on the device"

(* CZ with [2 * redundancy + 1] CNOT copies inside the H conjugation:
   consecutive CNOT pairs cancel logically but still occupy the
   schedule, raising crosstalk susceptibility (Sec. 9.3). *)
let cz_with_redundancy c ~redundancy a b =
  let c = Circuit.h c b in
  let c = ref c in
  for _ = 0 to 2 * redundancy do
    c := Circuit.cnot !c ~control:a ~target:b
  done;
  Circuit.h !c b

let build device ~region ~shift ~redundancy =
  check_line device region;
  if List.length shift <> 4 then invalid_arg "Hidden_shift.build: shift must have 4 bits";
  if redundancy < 0 then invalid_arg "Hidden_shift.build: negative redundancy";
  let q = Array.of_list region in
  let h_all c = Array.fold_left (fun acc qubit -> Circuit.h acc qubit) c q in
  let x_shift c =
    List.fold_left2
      (fun acc qubit bit -> if bit then Circuit.x acc qubit else acc)
      c region shift
  in
  let oracle c =
    (* Phase oracle of the bent function x0 x1 + x2 x3: two CZ gates
       on the outer line edges, running in parallel. *)
    let c = cz_with_redundancy c ~redundancy q.(0) q.(1) in
    cz_with_redundancy c ~redundancy q.(2) q.(3)
  in
  let c = Circuit.create (Device.nqubits device) in
  let c = h_all c in
  let c = x_shift c in
  let c = oracle c in
  let c = x_shift c in
  let c = h_all c in
  let c = oracle c in
  let c = h_all c in
  let c = Circuit.measure_all c in
  (* Expected readout: the shift, expressed over sorted measured
     qubits (the bitstring convention of [Qcx_noise.Exec]). *)
  let shift_of_qubit =
    List.combine region shift
  in
  let measured = List.sort compare region in
  let expected =
    String.concat ""
      (List.map
         (fun qb -> if List.assoc qb shift_of_qubit then "1" else "0")
         measured)
  in
  { circuit = c; region; shift; expected }

let error_rate t ~counts_get ~total =
  if total <= 0 then invalid_arg "Hidden_shift.error_rate: no trials";
  1.0 -. (float_of_int (counts_get t.expected) /. float_of_int total)
