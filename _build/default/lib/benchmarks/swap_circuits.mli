(** The SWAP-circuit benchmark of Sections 8.3/9.1 (Figures 5-7).

    A CNOT between two distant qubits is implemented by moving both
    endpoints toward the middle of the shortest path with SWAP chains
    (each SWAP = three CNOTs).  The circuit starts with a Hadamard on
    the source (the paper's U2), so the final middle CNOT leaves a
    Bell pair whose quality is read out with state tomography. *)

type t = {
  circuit : Qcx_circuit.Circuit.t;
      (** SWAPs decomposed to CNOTs; no measurements — the tomography
          driver appends basis rotations and readout *)
  bell : int * int;  (** hardware qubits carrying the Bell pair *)
  src : int;
  dst : int;
  path_length : int;  (** hops between [src] and [dst] *)
}

val build : Qcx_device.Device.t -> src:int -> dst:int -> t

val build_aware :
  Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  ?threshold:float ->
  ?penalty:float ->
  src:int ->
  dst:int ->
  unit ->
  t
(** Like {!build} but routed with {!Qcx_scheduler.Routing.crosstalk_aware_path},
    trading a bounded detour for avoiding high-crosstalk edges — the
    routing-side mitigation the `ablation` bench compares against (and
    combines with) XtalkSched. *)

val swap_count : t -> int
(** Number of logical SWAPs (CNOT count / 3, rounded down, minus the
    final entangling CNOT). *)

val is_crosstalk_prone :
  Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  ?threshold:float ->
  t ->
  bool
(** Whether the circuit contains at least one pair of
    potentially-overlapping CNOT instances whose edges are flagged
    high-crosstalk — the selection criterion for the paper's 46
    evaluation circuits. *)

val crosstalk_free_paths :
  Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  ?threshold:float ->
  length:int ->
  unit ->
  (int * int) list
(** Endpoint pairs at the given hop distance whose SWAP circuits are
    NOT crosstalk-prone — the ideal-baseline population of Figure 7. *)
