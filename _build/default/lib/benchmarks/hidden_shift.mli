(** Hidden Shift benchmark (Section 9.3, Figure 9).

    The 4-qubit hidden-shift circuit for the bent function
    f(x) = x0 x1 + x2 x3: Hadamards, shifted oracle (X on the shift
    bits around CZ gates), Hadamards, dual oracle, Hadamards.  The
    output is deterministically the shift string, so the error rate is
    the fraction of trials that read anything else.

    Each oracle layer contains two CZ gates on the outer edges of the
    line — two parallel two-qubit operations per layer, two layers, as
    the paper describes.  CZ is emitted as H-CNOT-H, keeping the
    circuit Clifford.  [redundancy] replaces each oracle CNOT with
    [2k+1] copies: the extra pairs are logical identities but widen
    the crosstalk exposure window — the paper's susceptibility knob
    (Figure 9b uses one level, i.e. three CNOTs in place of one). *)

type t = {
  circuit : Qcx_circuit.Circuit.t;  (** measurements included *)
  region : int list;
  shift : bool list;  (** per region qubit *)
  expected : string;  (** expected readout over sorted measured qubits *)
}

val build :
  Qcx_device.Device.t ->
  region:int list ->
  shift:bool list ->
  redundancy:int ->
  t
(** [region]: a 4-qubit line; [shift]: 4 booleans; [redundancy]: 0 for
    the plain benchmark, 1 for the redundant-CNOT variant. *)

val error_rate : t -> counts_get:(string -> int) -> total:int -> float
(** Fraction of trials that did not produce [expected]. *)
