(** QAOA benchmark circuits (Section 9.2, Figure 8): the
    hardware-efficient ansatz of Moll et al. on a 4-qubit line region.

    Three entangling layers of three CNOTs each (nine two-qubit gates)
    interleaved with per-qubit Ry/Rz rotation layers — 43 gates total,
    as in the paper.  The first two CNOTs of each entangling layer act
    on the outer edges of the line and therefore run in parallel,
    which is exactly where the evaluated regions have crosstalk. *)

type t = {
  circuit : Qcx_circuit.Circuit.t;  (** measurements included *)
  region : int list;  (** the 4 hardware qubits, in line order *)
}

val build : Qcx_device.Device.t -> rng:Qcx_util.Rng.t -> region:int list -> t
(** [region] must be a 4-qubit line on the device (each consecutive
    pair an edge).  Rotation angles draw from [rng] — fix the seed to
    fix the instance. *)

val gate_count : t -> int
val two_qubit_count : t -> int
