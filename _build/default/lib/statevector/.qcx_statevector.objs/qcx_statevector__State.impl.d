lib/statevector/state.ml: Array Fun List Qcx_linalg Qcx_util
