lib/statevector/state.mli: Qcx_linalg Qcx_util
