module Cplx = Qcx_linalg.Cplx
module Mat = Qcx_linalg.Mat
module Rng = Qcx_util.Rng

type t = { n : int; re : float array; im : float array }

let create n =
  if n <= 0 || n > 26 then invalid_arg "State.create: need 1 <= n <= 26";
  let dim = 1 lsl n in
  let re = Array.make dim 0.0 and im = Array.make dim 0.0 in
  re.(0) <- 1.0;
  { n; re; im }

let nqubits t = t.n
let dim t = 1 lsl t.n
let copy t = { n = t.n; re = Array.copy t.re; im = Array.copy t.im }

let check_qubit t q = if q < 0 || q >= t.n then invalid_arg "State: qubit out of range"

let amplitude t k = Cplx.make t.re.(k) t.im.(k)
let probability t k = (t.re.(k) *. t.re.(k)) +. (t.im.(k) *. t.im.(k))
let probabilities t = Array.init (dim t) (probability t)

let apply1 t u q =
  check_qubit t q;
  if Mat.rows u <> 2 || Mat.cols u <> 2 then invalid_arg "State.apply1: need 2x2 matrix";
  let u00 = Mat.get u 0 0 and u01 = Mat.get u 0 1 in
  let u10 = Mat.get u 1 0 and u11 = Mat.get u 1 1 in
  let bit = 1 lsl q in
  let d = dim t in
  let i = ref 0 in
  while !i < d do
    if !i land bit = 0 then begin
      let j = !i lor bit in
      let ar = t.re.(!i) and ai = t.im.(!i) in
      let br = t.re.(j) and bi = t.im.(j) in
      t.re.(!i) <- (u00.Cplx.re *. ar) -. (u00.Cplx.im *. ai) +. (u01.Cplx.re *. br) -. (u01.Cplx.im *. bi);
      t.im.(!i) <- (u00.Cplx.re *. ai) +. (u00.Cplx.im *. ar) +. (u01.Cplx.re *. bi) +. (u01.Cplx.im *. br);
      t.re.(j) <- (u10.Cplx.re *. ar) -. (u10.Cplx.im *. ai) +. (u11.Cplx.re *. br) -. (u11.Cplx.im *. bi);
      t.im.(j) <- (u10.Cplx.re *. ai) +. (u10.Cplx.im *. ar) +. (u11.Cplx.re *. bi) +. (u11.Cplx.im *. br)
    end;
    incr i
  done

let apply2 t u q0 q1 =
  check_qubit t q0;
  check_qubit t q1;
  if q0 = q1 then invalid_arg "State.apply2: qubits must differ";
  if Mat.rows u <> 4 || Mat.cols u <> 4 then invalid_arg "State.apply2: need 4x4 matrix";
  let b0 = 1 lsl q0 and b1 = 1 lsl q1 in
  let d = dim t in
  let idx = Array.make 4 0 in
  let vr = Array.make 4 0.0 and vi = Array.make 4 0.0 in
  for k = 0 to d - 1 do
    if k land b0 = 0 && k land b1 = 0 then begin
      idx.(0) <- k;
      idx.(1) <- k lor b0;
      idx.(2) <- k lor b1;
      idx.(3) <- k lor b0 lor b1;
      for a = 0 to 3 do
        vr.(a) <- t.re.(idx.(a));
        vi.(a) <- t.im.(idx.(a))
      done;
      for row = 0 to 3 do
        let accr = ref 0.0 and acci = ref 0.0 in
        for col = 0 to 3 do
          let m = Mat.get u row col in
          accr := !accr +. (m.Cplx.re *. vr.(col)) -. (m.Cplx.im *. vi.(col));
          acci := !acci +. (m.Cplx.re *. vi.(col)) +. (m.Cplx.im *. vr.(col))
        done;
        t.re.(idx.(row)) <- !accr;
        t.im.(idx.(row)) <- !acci
      done
    end
  done

let cnot t ~control ~target =
  check_qubit t control;
  check_qubit t target;
  if control = target then invalid_arg "State.cnot: control = target";
  let cb = 1 lsl control and tb = 1 lsl target in
  let d = dim t in
  for k = 0 to d - 1 do
    if k land cb <> 0 && k land tb = 0 then begin
      let j = k lor tb in
      let ar = t.re.(k) and ai = t.im.(k) in
      t.re.(k) <- t.re.(j);
      t.im.(k) <- t.im.(j);
      t.re.(j) <- ar;
      t.im.(j) <- ai
    end
  done

let h t q = apply1 t Qcx_linalg.Gates.h q
let x t q = apply1 t Qcx_linalg.Gates.x q
let y t q = apply1 t Qcx_linalg.Gates.y q
let z t q = apply1 t Qcx_linalg.Gates.z q
let s t q = apply1 t Qcx_linalg.Gates.s q
let sdg t q = apply1 t Qcx_linalg.Gates.sdg q

let apply_pauli t p q =
  match p with `X -> x t q | `Y -> y t q | `Z -> z t q

let prob_one t q =
  let bit = 1 lsl q in
  let acc = ref 0.0 in
  for k = 0 to dim t - 1 do
    if k land bit <> 0 then acc := !acc +. probability t k
  done;
  !acc

let measure t rng q =
  check_qubit t q;
  let p1 = prob_one t q in
  let outcome = Rng.unit_float rng < p1 in
  let keep_prob = if outcome then p1 else 1.0 -. p1 in
  let scale = if keep_prob <= 0.0 then 0.0 else 1.0 /. sqrt keep_prob in
  let bit = 1 lsl q in
  for k = 0 to dim t - 1 do
    let matches = (k land bit <> 0) = outcome in
    if matches then begin
      t.re.(k) <- t.re.(k) *. scale;
      t.im.(k) <- t.im.(k) *. scale
    end
    else begin
      t.re.(k) <- 0.0;
      t.im.(k) <- 0.0
    end
  done;
  outcome

let sample t rng =
  let target = Rng.unit_float rng in
  let acc = ref 0.0 in
  let result = ref (dim t - 1) in
  (try
     for k = 0 to dim t - 1 do
       acc := !acc +. probability t k;
       if !acc > target then begin
         result := k;
         raise Exit
       end
     done
   with Exit -> ());
  !result

let norm t =
  let acc = ref 0.0 in
  for k = 0 to dim t - 1 do
    acc := !acc +. probability t k
  done;
  sqrt !acc

let inner_product a b =
  if a.n <> b.n then invalid_arg "State.inner_product: size mismatch";
  let accr = ref 0.0 and acci = ref 0.0 in
  for k = 0 to dim a - 1 do
    (* conj(a_k) * b_k *)
    accr := !accr +. (a.re.(k) *. b.re.(k)) +. (a.im.(k) *. b.im.(k));
    acci := !acci +. (a.re.(k) *. b.im.(k)) -. (a.im.(k) *. b.re.(k))
  done;
  Cplx.make !accr !acci

let fidelity a b = Cplx.norm2 (inner_product a b)

let of_amplitudes amps =
  let d = Array.length amps in
  let n = ref 0 in
  while 1 lsl !n < d do
    incr n
  done;
  if 1 lsl !n <> d then invalid_arg "State.of_amplitudes: length not a power of two";
  let t = create !n in
  let total = Array.fold_left (fun acc z -> acc +. Cplx.norm2 z) 0.0 amps in
  if total <= 0.0 then invalid_arg "State.of_amplitudes: zero vector";
  let scale = 1.0 /. sqrt total in
  Array.iteri
    (fun k z ->
      t.re.(k) <- z.Cplx.re *. scale;
      t.im.(k) <- z.Cplx.im *. scale)
    amps;
  t

let reduced_density t qubits =
  List.iter (check_qubit t) qubits;
  let m = List.length qubits in
  let qarr = Array.of_list qubits in
  let dsub = 1 lsl m in
  let rho = Mat.create dsub dsub in
  let rest_qubits = List.filter (fun q -> not (List.mem q qubits)) (List.init t.n Fun.id) in
  let rest = Array.of_list rest_qubits in
  let drest = 1 lsl Array.length rest in
  let full_index ~env ~sub =
    let k = ref 0 in
    Array.iteri (fun i q -> if (env lsr i) land 1 = 1 then k := !k lor (1 lsl q)) rest;
    Array.iteri (fun i q -> if (sub lsr i) land 1 = 1 then k := !k lor (1 lsl q)) qarr;
    !k
  in
  for env = 0 to drest - 1 do
    for a = 0 to dsub - 1 do
      let va = amplitude t (full_index ~env ~sub:a) in
      for b = 0 to dsub - 1 do
        let vb = amplitude t (full_index ~env ~sub:b) in
        Mat.set rho a b (Cplx.add (Mat.get rho a b) (Cplx.mul va (Cplx.conj vb)))
      done
    done
  done;
  rho
