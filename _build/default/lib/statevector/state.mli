(** Dense statevector simulator.

    Amplitudes are stored as separate re/im float arrays of length 2^n
    with qubit 0 as the least significant bit of the index.  Suits the
    paper's non-Clifford workloads: 4-qubit QAOA circuits, Bell-state
    tomography, and noise-model cross-validation against the
    stabilizer backend (up to ~20 qubits). *)

type t

val create : int -> t
(** [create n] is |0...0> over n qubits. *)

val nqubits : t -> int
val copy : t -> t
val dim : t -> int

val amplitude : t -> int -> Qcx_linalg.Cplx.t
val probability : t -> int -> float
(** Probability of the basis state with the given index. *)

val probabilities : t -> float array

val apply1 : t -> Qcx_linalg.Mat.t -> int -> unit
(** Apply a 2x2 unitary to one qubit. *)

val apply2 : t -> Qcx_linalg.Mat.t -> int -> int -> unit
(** [apply2 t u q0 q1] applies a 4x4 matrix; [q0] is the less
    significant bit of the matrix's 2-bit index. *)

val cnot : t -> control:int -> target:int -> unit
val h : t -> int -> unit
val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val s : t -> int -> unit
val sdg : t -> int -> unit

val apply_pauli : t -> [ `X | `Y | `Z ] -> int -> unit

val measure : t -> Qcx_util.Rng.t -> int -> bool
(** Projective measurement of one qubit; renormalizes. *)

val sample : t -> Qcx_util.Rng.t -> int
(** Draw a full basis-state index from the output distribution
    without collapsing the state. *)

val norm : t -> float
(** Should be 1 up to float error; exposed for tests. *)

val inner_product : t -> t -> Qcx_linalg.Cplx.t
val fidelity : t -> t -> float
(** |<a|b>|^2. *)

val of_amplitudes : Qcx_linalg.Cplx.t array -> t
(** Length must be a power of two; normalizes. *)

val reduced_density : t -> int list -> Qcx_linalg.Mat.t
(** Partial trace down to the given qubits (in the order listed,
    first = least significant).  Used by tomography tests. *)
