let c = Cplx.make
let r = Cplx.re
let m2 a b cc d = Mat.of_arrays [| [| a; b |]; [| cc; d |] |]
let inv_sqrt2 = 1.0 /. sqrt 2.0

let id2 = Mat.identity 2
let x = m2 Cplx.zero Cplx.one Cplx.one Cplx.zero
let y = m2 Cplx.zero (c 0.0 (-1.0)) (c 0.0 1.0) Cplx.zero
let z = m2 Cplx.one Cplx.zero Cplx.zero (r (-1.0))
let h = m2 (r inv_sqrt2) (r inv_sqrt2) (r inv_sqrt2) (r (-.inv_sqrt2))
let s = m2 Cplx.one Cplx.zero Cplx.zero Cplx.i
let sdg = m2 Cplx.one Cplx.zero Cplx.zero (c 0.0 (-1.0))
let t = m2 Cplx.one Cplx.zero Cplx.zero (Cplx.exp_i (Float.pi /. 4.0))
let tdg = m2 Cplx.one Cplx.zero Cplx.zero (Cplx.exp_i (-.Float.pi /. 4.0))

let sx =
  m2 (c 0.5 0.5) (c 0.5 (-0.5)) (c 0.5 (-0.5)) (c 0.5 0.5)

let rx theta =
  let ct = cos (theta /. 2.0) and st = sin (theta /. 2.0) in
  m2 (r ct) (c 0.0 (-.st)) (c 0.0 (-.st)) (r ct)

let ry theta =
  let ct = cos (theta /. 2.0) and st = sin (theta /. 2.0) in
  m2 (r ct) (r (-.st)) (r st) (r ct)

let rz theta =
  m2 (Cplx.exp_i (-.theta /. 2.0)) Cplx.zero Cplx.zero (Cplx.exp_i (theta /. 2.0))

let u2 phi lam =
  m2 (r inv_sqrt2)
    (Cplx.scale (-.inv_sqrt2) (Cplx.exp_i lam))
    (Cplx.scale inv_sqrt2 (Cplx.exp_i phi))
    (Cplx.scale inv_sqrt2 (Cplx.exp_i (phi +. lam)))

let pauli_of_char = function
  | 'I' -> id2
  | 'X' -> x
  | 'Y' -> y
  | 'Z' -> z
  | ch -> invalid_arg (Printf.sprintf "Gates.pauli_of_char: %c" ch)

let cnot ~control ~target =
  if control = target || control > 1 || target > 1 || control < 0 || target < 0 then
    invalid_arg "Gates.cnot: bits must be 0 and 1";
  Mat.init 4 4 (fun row col ->
      let flip = if col land (1 lsl control) <> 0 then col lxor (1 lsl target) else col in
      if row = flip then Cplx.one else Cplx.zero)

let swap2 =
  Mat.init 4 4 (fun row col ->
      let swapped = ((col land 1) lsl 1) lor ((col lsr 1) land 1) in
      if row = swapped then Cplx.one else Cplx.zero)

let cz =
  Mat.init 4 4 (fun row col ->
      if row <> col then Cplx.zero else if row = 3 then r (-1.0) else Cplx.one)

let bell_phi_plus = [| r inv_sqrt2; Cplx.zero; Cplx.zero; r inv_sqrt2 |]

let density_of_state psi =
  let n = Array.length psi in
  Mat.init n n (fun i j -> Cplx.mul psi.(i) (Cplx.conj psi.(j)))
