(** Dense complex matrices.

    Sized for the small objects this project manipulates — gate
    unitaries (2x2, 4x4), density matrices of tomographed subsystems,
    readout confusion matrices — not for the full statevector (see
    [Qcx_statevector.State] for that). *)

type t

val create : int -> int -> t
(** [create rows cols] is the zero matrix. *)

val init : int -> int -> (int -> int -> Cplx.t) -> t
val of_arrays : Cplx.t array array -> t

val identity : int -> t
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> Cplx.t
val set : t -> int -> int -> Cplx.t -> unit

val add : t -> t -> t
val sub : t -> t -> t
val scale : Cplx.t -> t -> t
val mul : t -> t -> t
val adjoint : t -> t
(** Conjugate transpose. *)

val transpose : t -> t
val kron : t -> t -> t
(** Kronecker (tensor) product. *)

val trace : t -> Cplx.t

val apply : t -> Cplx.t array -> Cplx.t array
(** Matrix-vector product. *)

val is_unitary : ?tol:float -> t -> bool
(** [true] when [m * adjoint m] is the identity within [tol]. *)

val approx_equal : ?tol:float -> t -> t -> bool

val solve : t -> Cplx.t array -> Cplx.t array
(** [solve a b] solves [a x = b] by Gaussian elimination with partial
    pivoting.  Raises [Failure] when [a] is singular. *)

val real_solve : float array array -> float array -> float array
(** Real-valued variant of {!solve} for confusion-matrix inversion. *)

val to_string : t -> string
