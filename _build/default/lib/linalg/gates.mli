(** Standard gate unitaries as dense matrices.

    Single-qubit matrices are 2x2; two-qubit matrices are 4x4 in the
    basis |q1 q0> (qubit 0 is the least significant bit, matching
    [Qcx_statevector.State]). *)

val id2 : Mat.t
val x : Mat.t
val y : Mat.t
val z : Mat.t
val h : Mat.t
val s : Mat.t
val sdg : Mat.t
val t : Mat.t
val tdg : Mat.t
val sx : Mat.t
(** sqrt(X). *)

val rx : float -> Mat.t
val ry : float -> Mat.t
val rz : float -> Mat.t
val u2 : float -> float -> Mat.t
(** IBM U2(phi, lambda) gate: a single-pulse rotation,
    [1/sqrt 2 [[1, -e^{i lam}], [e^{i phi}, e^{i (phi+lam)}]]]. *)

val pauli_of_char : char -> Mat.t
(** ['I' | 'X' | 'Y' | 'Z'] to matrix.  Raises on other characters. *)

val cnot : control:int -> target:int -> Mat.t
(** 4x4 CNOT where [control]/[target] are 0 or 1 (bit positions). *)

val swap2 : Mat.t
(** 4x4 SWAP. *)

val cz : Mat.t
(** 4x4 controlled-Z (symmetric). *)

val bell_phi_plus : Cplx.t array
(** The |Phi+> = (|00> + |11>)/sqrt2 statevector, length 4. *)

val density_of_state : Cplx.t array -> Mat.t
(** Outer product |psi><psi|. *)
