lib/linalg/mat.ml: Array Buffer Cplx
