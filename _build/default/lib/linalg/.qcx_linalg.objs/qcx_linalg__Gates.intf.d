lib/linalg/gates.mli: Cplx Mat
