lib/linalg/cplx.mli: Complex
