lib/linalg/cplx.ml: Complex Float Printf
