lib/linalg/gates.ml: Array Cplx Float Mat Printf
