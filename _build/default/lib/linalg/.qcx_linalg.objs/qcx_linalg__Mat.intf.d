lib/linalg/mat.mli: Cplx
