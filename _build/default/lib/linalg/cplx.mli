(** Complex arithmetic helpers over [Stdlib.Complex.t].

    Thin layer adding the handful of operations the simulators and
    tomography code need beyond the standard library. *)

type t = Complex.t = { re : float; im : float }

val zero : t
val one : t
val i : t

val make : float -> float -> t
val re : float -> t
(** [re x] embeds a real number. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val conj : t -> t
val scale : float -> t -> t

val norm2 : t -> float
(** Squared magnitude |z|^2. *)

val abs : t -> float

val exp_i : float -> t
(** [exp_i theta] is e^{i theta}. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Componentwise comparison with tolerance (default 1e-9). *)

val to_string : t -> string
