type t = Complex.t = { re : float; im : float }

let zero = Complex.zero
let one = Complex.one
let i = Complex.i
let make re im = { re; im }
let re x = { re = x; im = 0.0 }
let add = Complex.add
let sub = Complex.sub
let mul = Complex.mul
let div = Complex.div
let neg = Complex.neg
let conj = Complex.conj
let scale s z = { re = s *. z.re; im = s *. z.im }
let norm2 z = (z.re *. z.re) +. (z.im *. z.im)
let abs = Complex.norm
let exp_i theta = { re = cos theta; im = sin theta }

let approx_equal ?(tol = 1e-9) a b =
  Float.abs (a.re -. b.re) <= tol && Float.abs (a.im -. b.im) <= tol

let to_string z = Printf.sprintf "%g%+gi" z.re z.im
