type t = { rows : int; cols : int; data : Cplx.t array }

let create rows cols = { rows; cols; data = Array.make (rows * cols) Cplx.zero }

let init rows cols f =
  { rows; cols; data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) }

let of_arrays arr =
  let rows = Array.length arr in
  if rows = 0 then invalid_arg "Mat.of_arrays: empty";
  let cols = Array.length arr.(0) in
  Array.iter (fun row -> if Array.length row <> cols then invalid_arg "Mat.of_arrays: ragged") arr;
  init rows cols (fun i j -> arr.(i).(j))

let identity n = init n n (fun i j -> if i = j then Cplx.one else Cplx.zero)
let rows m = m.rows
let cols m = m.cols

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.get: out of bounds";
  m.data.((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.set: out of bounds";
  m.data.((i * m.cols) + j) <- v

let lift2 name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg (name ^ ": shape mismatch");
  { a with data = Array.init (Array.length a.data) (fun k -> f a.data.(k) b.data.(k)) }

let add a b = lift2 "Mat.add" Cplx.add a b
let sub a b = lift2 "Mat.sub" Cplx.sub a b
let scale s m = { m with data = Array.map (Cplx.mul s) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: shape mismatch";
  let out = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> Cplx.zero then
        for j = 0 to b.cols - 1 do
          out.data.((i * b.cols) + j) <-
            Cplx.add out.data.((i * b.cols) + j) (Cplx.mul aik b.data.((k * b.cols) + j))
        done
    done
  done;
  out

let adjoint m = init m.cols m.rows (fun i j -> Cplx.conj (get m j i))
let transpose m = init m.cols m.rows (fun i j -> get m j i)

let kron a b =
  init (a.rows * b.rows) (a.cols * b.cols) (fun i j ->
      Cplx.mul (get a (i / b.rows) (j / b.cols)) (get b (i mod b.rows) (j mod b.cols)))

let trace m =
  if m.rows <> m.cols then invalid_arg "Mat.trace: not square";
  let acc = ref Cplx.zero in
  for k = 0 to m.rows - 1 do
    acc := Cplx.add !acc (get m k k)
  done;
  !acc

let apply m v =
  if m.cols <> Array.length v then invalid_arg "Mat.apply: shape mismatch";
  Array.init m.rows (fun i ->
      let acc = ref Cplx.zero in
      for j = 0 to m.cols - 1 do
        acc := Cplx.add !acc (Cplx.mul (get m i j) v.(j))
      done;
      !acc)

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Cplx.approx_equal ~tol x y) a.data b.data

let is_unitary ?(tol = 1e-9) m =
  m.rows = m.cols && approx_equal ~tol (mul m (adjoint m)) (identity m.rows)

let solve a b =
  if a.rows <> a.cols then invalid_arg "Mat.solve: not square";
  let n = a.rows in
  if Array.length b <> n then invalid_arg "Mat.solve: shape mismatch";
  let m = Array.init n (fun i -> Array.init n (get a i)) in
  let x = Array.copy b in
  for col = 0 to n - 1 do
    (* partial pivot *)
    let pivot = ref col in
    for r = col + 1 to n - 1 do
      if Cplx.abs m.(r).(col) > Cplx.abs m.(!pivot).(col) then pivot := r
    done;
    if Cplx.abs m.(!pivot).(col) < 1e-12 then failwith "Mat.solve: singular matrix";
    if !pivot <> col then begin
      let tmp = m.(col) in
      m.(col) <- m.(!pivot);
      m.(!pivot) <- tmp;
      let tb = x.(col) in
      x.(col) <- x.(!pivot);
      x.(!pivot) <- tb
    end;
    let inv = Cplx.div Cplx.one m.(col).(col) in
    for r = col + 1 to n - 1 do
      let factor = Cplx.mul m.(r).(col) inv in
      if factor <> Cplx.zero then begin
        for c = col to n - 1 do
          m.(r).(c) <- Cplx.sub m.(r).(c) (Cplx.mul factor m.(col).(c))
        done;
        x.(r) <- Cplx.sub x.(r) (Cplx.mul factor x.(col))
      end
    done
  done;
  for row = n - 1 downto 0 do
    let acc = ref x.(row) in
    for c = row + 1 to n - 1 do
      acc := Cplx.sub !acc (Cplx.mul m.(row).(c) x.(c))
    done;
    x.(row) <- Cplx.div !acc m.(row).(row)
  done;
  x

let real_solve a b =
  let n = Array.length b in
  let ac = init n n (fun i j -> Cplx.re a.(i).(j)) in
  let bc = Array.map Cplx.re b in
  Array.map (fun z -> z.Cplx.re) (solve ac bc)

let to_string m =
  let buf = Buffer.create 128 in
  for i = 0 to m.rows - 1 do
    for j = 0 to m.cols - 1 do
      Buffer.add_string buf (Cplx.to_string (get m i j));
      if j < m.cols - 1 then Buffer.add_string buf "  "
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
