(** ParSched: the baseline scheduler of IBM Qiskit / Quilc / TriQ
    (Table 1) — maximum instruction parallelism.

    Gates run as soon as their dependencies allow (ASAP), then the
    whole schedule is right-aligned against the synchronized readout
    layer, reproducing the IBM hardware behaviour of Figure 1(c).
    Crosstalk is ignored entirely. *)

val schedule : Qcx_device.Device.t -> Qcx_circuit.Circuit.t -> Qcx_circuit.Schedule.t
(** Input must be hardware-compliant (SWAPs decomposed, CNOTs on
    device edges). *)

val schedule_with_orderings :
  Qcx_device.Device.t ->
  Qcx_circuit.Circuit.t ->
  extra:(int * int) list ->
  Qcx_circuit.Schedule.t
(** Like {!schedule}, but additionally honoring [extra] ordering
    constraints (gate [i] finishes before gate [j] starts) — the
    deployment path of XtalkSched's decisions: once the optimizer has
    chosen which interfering pairs to serialize, the barrier-enforced
    circuit replays through the ordinary parallel scheduler.  Pairs
    whose ids fall outside the circuit are ignored (convenient when a
    basis-rotation suffix extends a previously-optimized prefix). *)
