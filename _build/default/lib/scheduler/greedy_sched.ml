module Circuit = Qcx_circuit.Circuit
module Dag = Qcx_circuit.Dag

let schedule ?(threshold = 3.0) ~device ~xtalk circuit =
  let circuit = Circuit.decompose_swaps circuit in
  let dag = Dag.of_circuit circuit in
  let instances = Encoding.interfering_instances ~device ~xtalk ~threshold ~dag in
  (* Program order decides each pair's direction; ids are assigned in
     program order, so (min, max) is "earlier gate first". *)
  let extra = List.map (fun (i, j) -> (min i j, max i j)) instances in
  (Par_sched.schedule_with_orderings device circuit ~extra, List.length extra)
