(** SWAP routing: produce hardware-compliant IR.

    The paper's scheduler takes mapped, routed IR as input (it invokes
    Qiskit passes for mapping and SWAP insertion); this module is the
    equivalent substrate.  It provides the meet-in-the-middle SWAP
    construction used by the Figure 5/6/7 benchmarks and a greedy
    router for arbitrary circuits. *)

val meet_in_middle : Qcx_device.Device.t -> src:int -> dst:int -> (int * int) list * (int * int)
(** [meet_in_middle device ~src ~dst] walks both endpoints of the
    shortest path toward its middle: returns the SWAP list (in
    execution order; the two directions are logically independent) and
    the final adjacent pair on which the distant CNOT lands.  E.g. on
    Poughkeepsie, CNOT 0,13 becomes SWAP 0,5; SWAP 5,10; SWAP 13,12;
    SWAP 12,11 with the final CNOT on (10, 11).  Raises
    [Invalid_argument] when the qubits are disconnected or equal. *)

val swap_path_qubits : Qcx_device.Device.t -> src:int -> dst:int -> int list
(** The qubits of the shortest path used by {!meet_in_middle}. *)

val crosstalk_aware_path :
  Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  ?threshold:float ->
  ?penalty:float ->
  src:int ->
  dst:int ->
  unit ->
  int list
(** Weighted shortest path that prefers to route around edges involved
    in characterized high-crosstalk pairs: a clean edge costs 1, a
    risky edge [1 + penalty] (default 0.9, i.e. one risky edge is worth
    almost one extra hop of detour).  An extension of the paper's
    observation that compilers can navigate crosstalk tradeoffs —
    mapping/routing and scheduling are complementary defenses; the
    `ablation` bench quantifies the combination. *)

val meet_in_middle_aware :
  Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  ?threshold:float ->
  ?penalty:float ->
  src:int ->
  dst:int ->
  unit ->
  (int * int) list * (int * int)
(** {!meet_in_middle} over the crosstalk-aware path. *)

val route : Qcx_device.Device.t -> Qcx_circuit.Circuit.t -> Qcx_circuit.Circuit.t
(** Make every CNOT hardware-compliant by inserting logical SWAP gates
    along shortest paths (greedy; the qubit placement moves as swaps
    accumulate).  The output still contains [Swap] gates — call
    [Circuit.decompose_swaps] before scheduling. *)
