module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Dag = Qcx_circuit.Dag
module Schedule = Qcx_circuit.Schedule

let schedule_with_orderings device circuit ~extra =
  let n = Circuit.length circuit in
  let durations = Durations.assign device circuit in
  let dag = Dag.of_circuit circuit in
  let extra = List.filter (fun (i, j) -> i >= 0 && j >= 0 && i < n && j < n && i <> j) extra in
  let extra_preds = Array.make n [] in
  let extra_succs = Array.make n [] in
  List.iter
    (fun (i, j) ->
      extra_preds.(j) <- i :: extra_preds.(j);
      extra_succs.(i) <- j :: extra_succs.(i))
    extra;
  let starts = Array.make n 0.0 in
  (* ASAP relaxation.  Extra edges may point backward in program
     order (XtalkSched can reverse logically-independent gates), so
     sweep to a fixpoint; a cycle among the orderings would be a bug
     in the caller and is reported. *)
  let changed = ref true in
  let sweeps = ref 0 in
  while !changed do
    changed := false;
    incr sweeps;
    if !sweeps > n + 1 then invalid_arg "Par_sched: ordering constraints form a cycle";
    List.iter
      (fun g ->
        let id = g.Gate.id in
        let ready =
          List.fold_left
            (fun acc p -> max acc (starts.(p) +. durations.(p)))
            0.0
            (Dag.preds dag id @ extra_preds.(id))
        in
        if ready > starts.(id) +. 1e-9 then begin
          starts.(id) <- ready;
          changed := true
        end)
      (Circuit.gates circuit)
  done;
  (* Synchronized readout: every measurement fires at the latest ready
     time across all measurements. *)
  let readout =
    List.fold_left
      (fun acc g -> if Gate.is_measure g then max acc starts.(g.Gate.id) else acc)
      neg_infinity (Circuit.gates circuit)
  in
  if readout > neg_infinity then
    List.iter
      (fun g -> if Gate.is_measure g then starts.(g.Gate.id) <- readout)
      (Circuit.gates circuit);
  (* Right-align against the readout layer, honoring extra edges. *)
  let deadline = if readout > neg_infinity then readout else
    Array.to_list starts |> List.mapi (fun id s -> s +. durations.(id)) |> List.fold_left max 0.0
  in
  (* Monotone-decreasing relaxation from the deadline: initialize
     every non-measure gate at the latest conceivable slot and pull
     earlier until all (DAG + extra) successor constraints hold. *)
  let alap =
    Array.init n (fun id ->
        let g = Dag.gate dag id in
        if Gate.is_measure g then starts.(id) else deadline -. durations.(id))
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for id = n - 1 downto 0 do
      let g = Dag.gate dag id in
      if not (Gate.is_measure g) then begin
        let latest_finish =
          List.fold_left
            (fun acc s -> min acc alap.(s))
            deadline
            (Dag.succs dag id @ extra_succs.(id))
        in
        let v = latest_finish -. durations.(id) in
        if v < alap.(id) -. 1e-9 then begin
          alap.(id) <- v;
          changed := true
        end
      end
    done
  done;
  Schedule.shift_to_zero (Schedule.make circuit ~starts:alap ~durations)

let schedule device circuit = schedule_with_orderings device circuit ~extra:[]
