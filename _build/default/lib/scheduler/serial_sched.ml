module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Schedule = Qcx_circuit.Schedule

let schedule device circuit =
  let durations = Durations.assign device circuit in
  let starts = Array.make (Circuit.length circuit) 0.0 in
  let clock = ref 0.0 in
  List.iter
    (fun g ->
      let id = g.Gate.id in
      if Gate.is_measure g || Gate.is_barrier g then starts.(id) <- !clock
      else begin
        starts.(id) <- !clock;
        clock := !clock +. durations.(id)
      end)
    (Circuit.gates circuit);
  (* All measurements at the final clock value. *)
  List.iter
    (fun g -> if Gate.is_measure g then starts.(g.Gate.id) <- !clock)
    (Circuit.gates circuit);
  Schedule.make circuit ~starts ~durations
