(** Gate durations from calibration data.

    CNOT durations are per-edge calibration values; single-qubit gates
    and readout use the per-qubit values; barriers take zero time.
    Logical SWAP gates must be decomposed to CNOTs first. *)

val assign : Qcx_device.Device.t -> Qcx_circuit.Circuit.t -> float array
(** Indexed by gate id, in nanoseconds.  Raises [Invalid_argument] on
    a CNOT over a non-edge or an undecomposed SWAP. *)
