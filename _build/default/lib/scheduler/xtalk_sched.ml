module Circuit = Qcx_circuit.Circuit
module Dag = Qcx_circuit.Dag
module Schedule = Qcx_circuit.Schedule
module Solver = Qcx_smt.Solver

type stats = {
  pairs : int;
  clusters : int;
  nodes : int;
  optimal : bool;
  objective : float;
  solve_seconds : float;
}

(* Union-find over gate ids, used to cluster interfering pairs that
   share gates. *)
let clusters_of instances =
  let parent = Hashtbl.create 16 in
  let rec find x =
    match Hashtbl.find_opt parent x with
    | None | Some None -> x
    | Some (Some p) ->
      let root = find p in
      Hashtbl.replace parent x (Some root);
      root
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra (Some rb)
  in
  List.iter
    (fun (i, j) ->
      if not (Hashtbl.mem parent i) then Hashtbl.replace parent i None;
      if not (Hashtbl.mem parent j) then Hashtbl.replace parent j None;
      union i j)
    instances;
  let groups = Hashtbl.create 4 in
  List.iter
    (fun ((i, _) as inst) ->
      let root = find i in
      Hashtbl.replace groups root (inst :: Option.value ~default:[] (Hashtbl.find_opt groups root)))
    instances;
  Hashtbl.fold (fun _ insts acc -> insts :: acc) groups []

let extract_schedule circuit durations encoding (solution : Solver.solution) =
  let starts =
    Array.init (Circuit.length circuit) (fun id -> solution.nums.(encoding.Encoding.tau.(id)))
  in
  Schedule.shift_to_zero (Schedule.make circuit ~starts ~durations)

let schedule ?(omega = 0.5) ?(threshold = 3.0) ?(node_budget = 2_000_000)
    ?(max_exact_pairs = 14) ~device ~xtalk circuit =
  let circuit = Circuit.decompose_swaps circuit in
  if omega >= 1.0 then begin
    (* omega = 1 ignores decoherence entirely; any serialization is
       then optimal and the paper equates this setting with
       SerialSched (Table 1, Sections 9.2/9.3). *)
    let sched = Serial_sched.schedule device circuit in
    let dag = Dag.of_circuit circuit in
    let instances = Encoding.interfering_instances ~device ~xtalk ~threshold ~dag in
    ( sched,
      {
        pairs = List.length instances;
        clusters = 1;
        nodes = 0;
        optimal = true;
        objective = nan;
        solve_seconds = 0.0;
      } )
  end
  else begin
  let durations = Durations.assign device circuit in
  let dag = Dag.of_circuit circuit in
  let instances = Encoding.interfering_instances ~device ~xtalk ~threshold ~dag in
  let t0 = Sys.time () in
  let build ?instances () =
    Encoding.build ?instances ~device ~xtalk ~omega ~threshold ~dag ~durations ()
  in
  let fallback () = (Par_sched.schedule device circuit, 0, false, nan) in
  let sched, nodes, optimal, objective, nclusters =
    if List.length instances <= max_exact_pairs then begin
      let enc = build ~instances () in
      match Solver.solve ~node_budget enc.Encoding.solver with
      | Some sol ->
        (extract_schedule circuit durations enc sol, sol.nodes, sol.optimal, sol.objective, 1)
      | None ->
        let s, n, o, obj = fallback () in
        (s, n, o, obj, 1)
    end
    else begin
      (* Cluster decomposition: optimize each connected component of
         interfering pairs separately, then evaluate the union of
         decisions once (zero remaining booleans). *)
      let clusters = clusters_of instances in
      let total_nodes = ref 0 in
      let decisions =
        List.concat_map
          (fun cluster_instances ->
            let enc = build ~instances:cluster_instances () in
            match Solver.solve ~node_budget enc.Encoding.solver with
            | None -> []
            | Some sol ->
              total_nodes := !total_nodes + sol.nodes;
              List.map
                (fun p ->
                  ( (p.Encoding.gate1, p.Encoding.gate2),
                    ( sol.bools.(p.Encoding.o),
                      sol.bools.(p.Encoding.before),
                      sol.bools.(p.Encoding.after) ) ))
                enc.Encoding.pairs)
          clusters
      in
      let enc = build ~instances () in
      (* Pin every boolean with unit clauses; a single propagation
         then reaches the unique leaf. *)
      List.iter
        (fun p ->
          match List.assoc_opt (p.Encoding.gate1, p.Encoding.gate2) decisions with
          | None -> ()
          | Some (o, b, a) ->
            Solver.add_clause enc.Encoding.solver [ { Solver.var = p.Encoding.o; value = o } ];
            Solver.add_clause enc.Encoding.solver
              [ { Solver.var = p.Encoding.before; value = b } ];
            Solver.add_clause enc.Encoding.solver [ { Solver.var = p.Encoding.after; value = a } ])
        enc.Encoding.pairs;
      match Solver.solve ~node_budget enc.Encoding.solver with
      | Some sol ->
        ( extract_schedule circuit durations enc sol,
          !total_nodes + sol.nodes,
          false,
          sol.objective,
          List.length clusters )
      | None ->
        let s, n, o, obj = fallback () in
        (s, n, o, obj, List.length clusters)
    end
  in
  let solve_seconds = Sys.time () -. t0 in
  ( sched,
    {
      pairs = List.length instances;
      clusters = nclusters;
      nodes;
      optimal;
      objective;
      solve_seconds;
    } )
  end

let tune_omega ?(candidates = [ 0.0; 0.05; 0.2; 0.5; 0.8; 1.0 ]) ?(threshold = 3.0) ~device
    ~xtalk circuit =
  if candidates = [] then invalid_arg "Xtalk_sched.tune_omega: no candidates";
  let scored =
    List.map
      (fun omega ->
        let sched, stats = schedule ~omega ~threshold ~device ~xtalk circuit in
        let err = (Evaluate.model device ~xtalk sched).Evaluate.error in
        (err, (omega, sched, stats)))
      candidates
  in
  let best =
    List.fold_left
      (fun acc candidate -> if fst candidate < fst acc then candidate else acc)
      (List.hd scored) (List.tl scored)
  in
  snd best
