(** GreedySched: a cheap heuristic alternative to the SMT scheduler.

    Serializes {e every} interfering CNOT instance pair in program
    order (no overlap-allowance reasoning, no reordering in favour of
    low-coherence qubits) and replays the result through the ordinary
    parallel scheduler.  Linear-time in the number of interfering
    pairs — a useful baseline for the `ablation` bench, quantifying
    what the paper's exact optimization buys over the obvious greedy
    fix, and a practical fallback for very large programs. *)

val schedule :
  ?threshold:float ->
  device:Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  Qcx_circuit.Circuit.t ->
  Qcx_circuit.Schedule.t * int
(** Returns the schedule and the number of instance pairs serialized.
    SWAPs are decomposed internally; [threshold] defaults to 3. *)
