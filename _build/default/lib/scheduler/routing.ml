module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Device = Qcx_device.Device
module Topology = Qcx_device.Topology

let swap_path_qubits device ~src ~dst =
  let path = Topology.shortest_path (Device.topology device) src dst in
  if path = [] then invalid_arg "Routing: qubits are disconnected";
  path

let meet_in_middle_of_path path_list =
  let path = Array.of_list path_list in
  let n = Array.length path in
  (* Walk src forward and dst backward until adjacent.  The CNOT lands
     on the middle edge of the path. *)
  let mid_left = (n - 1) / 2 in
  let forward = List.init mid_left (fun i -> (path.(i), path.(i + 1))) in
  let backward = List.init (n - 2 - mid_left) (fun i -> (path.(n - 1 - i), path.(n - 2 - i))) in
  (forward @ backward, (path.(mid_left), path.(mid_left + 1)))

let meet_in_middle device ~src ~dst =
  if src = dst then invalid_arg "Routing.meet_in_middle: src = dst";
  meet_in_middle_of_path (swap_path_qubits device ~src ~dst)

(* Dijkstra over qubits with per-edge weights; deterministic
   (highest-qubit tie break, matching the unweighted router). *)
let weighted_path topo ~weight ~src ~dst =
  let n = Topology.nqubits topo in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let visited = Array.make n false in
  dist.(src) <- 0.0;
  (try
     for _ = 1 to n do
       (* extract-min over the small qubit count *)
       let u = ref (-1) in
       for v = 0 to n - 1 do
         if (not visited.(v)) && dist.(v) < infinity
            && (!u = -1 || dist.(v) < dist.(!u) || (dist.(v) = dist.(!u) && v > !u))
         then u := v
       done;
       if !u = -1 then raise Exit;
       if !u = dst then raise Exit;
       visited.(!u) <- true;
       List.iter
         (fun v ->
           let w = weight (Topology.normalize (!u, v)) in
           if dist.(!u) +. w < dist.(v)
              || (dist.(!u) +. w = dist.(v) && !u > prev.(v))
           then begin
             dist.(v) <- dist.(!u) +. w;
             prev.(v) <- !u
           end)
         (Topology.neighbors topo !u)
     done
   with Exit -> ());
  if dist.(dst) = infinity then []
  else begin
    let rec walk cur acc = if cur = src then cur :: acc else walk prev.(cur) (cur :: acc) in
    walk dst []
  end

let crosstalk_aware_path device ~xtalk ?(threshold = 3.0) ?(penalty = 0.9) ~src ~dst () =
  if src = dst then invalid_arg "Routing.crosstalk_aware_path: src = dst";
  let topo = Device.topology device in
  let cal = Device.calibration device in
  let risky =
    List.concat_map
      (fun (e1, e2) -> [ e1; e2 ])
      (Qcx_device.Crosstalk.high_crosstalk_pairs xtalk cal ~threshold)
  in
  let weight e = if List.mem e risky then 1.0 +. penalty else 1.0 in
  let path = weighted_path topo ~weight ~src ~dst in
  if path = [] then invalid_arg "Routing.crosstalk_aware_path: disconnected qubits";
  path

let meet_in_middle_aware device ~xtalk ?(threshold = 3.0) ?(penalty = 0.9) ~src ~dst () =
  meet_in_middle_of_path (crosstalk_aware_path device ~xtalk ~threshold ~penalty ~src ~dst ())

let route device circuit =
  let topo = Device.topology device in
  let n = Circuit.nqubits circuit in
  if n > Topology.nqubits topo then invalid_arg "Routing.route: circuit larger than device";
  (* placement.(logical) = physical; inverse tracks the other way. *)
  let placement = Array.init (Topology.nqubits topo) Fun.id in
  let phys q = placement.(q) in
  let do_swap out a b =
    (* a, b are physical qubits; record the swap and update placement. *)
    let la = ref (-1) and lb = ref (-1) in
    Array.iteri
      (fun l p ->
        if p = a then la := l;
        if p = b then lb := l)
      placement;
    placement.(!la) <- b;
    placement.(!lb) <- a;
    Circuit.swap out a b
  in
  List.fold_left
    (fun out g ->
      match (g.Gate.kind, g.Gate.qubits) with
      | (Gate.Cnot | Gate.Swap), [ a; b ] ->
        let pa = phys a and pb = phys b in
        if Topology.has_edge topo (pa, pb) then
          Circuit.add out g.Gate.kind [ pa; pb ]
        else begin
          let path = Topology.shortest_path topo pa pb in
          if path = [] then invalid_arg "Routing.route: disconnected qubits";
          (* Move the control along the path until adjacent. *)
          let rec bring out = function
            | p :: q :: (_ :: _ as rest) ->
              let out = do_swap out p q in
              bring out (q :: rest)
            | _ -> out
          in
          let out = bring out path in
          Circuit.add out g.Gate.kind [ phys a; phys b ]
        end
      | _, qs -> Circuit.add out g.Gate.kind (List.map phys qs))
    (Circuit.create (Topology.nqubits topo))
    (Circuit.gates circuit)
