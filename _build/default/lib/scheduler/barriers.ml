module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Schedule = Qcx_circuit.Schedule

let serialized_pairs sched ~pairs =
  List.filter_map
    (fun (a, b) ->
      if Schedule.overlaps sched a b then None
      else if Schedule.start sched a <= Schedule.start sched b then Some (a, b)
      else Some (b, a))
    pairs

let insert sched ~serialized =
  let circuit = Schedule.circuit sched in
  let order = Schedule.gates_by_start sched in
  let barrier_before =
    (* later gate id -> qubits to synchronize *)
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (early, late) ->
        let qubits =
          List.sort_uniq compare
            ((Circuit.gate circuit early).Gate.qubits @ (Circuit.gate circuit late).Gate.qubits)
        in
        let existing = Option.value ~default:[] (Hashtbl.find_opt tbl late) in
        Hashtbl.replace tbl late (List.sort_uniq compare (qubits @ existing)))
      serialized;
    tbl
  in
  List.fold_left
    (fun acc g ->
      let acc =
        match Hashtbl.find_opt barrier_before g.Gate.id with
        | Some qubits -> Circuit.barrier acc qubits
        | None -> acc
      in
      if Gate.is_barrier g then acc (* original barriers are re-derived *)
      else Circuit.add acc g.Gate.kind g.Gate.qubits)
    (Circuit.create (Circuit.nqubits circuit))
    order
