module Circuit = Qcx_circuit.Circuit
module Gate = Qcx_circuit.Gate
module Device = Qcx_device.Device
module Calibration = Qcx_device.Calibration

let assign device circuit =
  let cal = Device.calibration device in
  let out = Array.make (Circuit.length circuit) 0.0 in
  List.iter
    (fun g ->
      let d =
        match (g.Gate.kind, g.Gate.qubits) with
        | Gate.Barrier, _ -> 0.0
        | Gate.Measure, [ q ] -> (Calibration.qubit cal q).Calibration.readout_duration
        | Gate.Cnot, [ a; b ] -> (Calibration.gate cal (a, b)).Calibration.cnot_duration
        | Gate.Swap, _ ->
          invalid_arg "Durations.assign: decompose SWAP gates before scheduling"
        | _, [ q ] -> (Calibration.qubit cal q).Calibration.single_qubit_duration
        | _ -> invalid_arg "Durations.assign: malformed gate"
      in
      out.(g.Gate.id) <- d)
    (Circuit.gates circuit);
  out
