(** Post-processing: express a computed schedule as a circuit with
    barrier instructions (the paper's Section 6 final step).

    The circuit-level ISA cannot state start times, only orderings, so
    the orderings XtalkSched chose between logically-independent gates
    are enforced by inserting barriers.  The emitted circuit lists
    gates in start-time order with a barrier ahead of the later gate
    of every serialized interfering pair. *)

val insert :
  Qcx_circuit.Schedule.t ->
  serialized:(int * int) list ->
  Qcx_circuit.Circuit.t
(** [insert sched ~serialized] rebuilds the circuit in schedule order
    and adds one barrier (over the union of the two gates' qubits)
    before the later gate of each pair in [serialized] (pairs are gate
    ids of the schedule's circuit).  Replaying the result with
    ParSched reproduces the serializations. *)

val serialized_pairs :
  Qcx_circuit.Schedule.t -> pairs:(int * int) list -> (int * int) list
(** The subset of [pairs] that the schedule runs without time overlap,
    ordered (earlier gate first). *)
