lib/scheduler/serial_sched.ml: Array Durations List Qcx_circuit
