lib/scheduler/barriers.ml: Hashtbl List Option Qcx_circuit
