lib/scheduler/evaluate.ml: Fun List Qcx_circuit Qcx_device Qcx_noise
