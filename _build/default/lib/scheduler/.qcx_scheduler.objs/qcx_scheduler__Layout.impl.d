lib/scheduler/layout.ml: List Qcx_circuit Qcx_device
