lib/scheduler/xtalk_sched.mli: Qcx_circuit Qcx_device
