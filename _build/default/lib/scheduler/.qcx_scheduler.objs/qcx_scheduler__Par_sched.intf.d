lib/scheduler/par_sched.mli: Qcx_circuit Qcx_device
