lib/scheduler/durations.mli: Qcx_circuit Qcx_device
