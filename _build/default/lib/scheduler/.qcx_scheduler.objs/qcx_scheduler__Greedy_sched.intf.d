lib/scheduler/greedy_sched.mli: Qcx_circuit Qcx_device
