lib/scheduler/routing.ml: Array Fun List Qcx_circuit Qcx_device
