lib/scheduler/greedy_sched.ml: Encoding List Par_sched Qcx_circuit
