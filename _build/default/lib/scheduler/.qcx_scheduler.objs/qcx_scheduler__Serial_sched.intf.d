lib/scheduler/serial_sched.mli: Qcx_circuit Qcx_device
