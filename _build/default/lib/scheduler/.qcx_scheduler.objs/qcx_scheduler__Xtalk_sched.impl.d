lib/scheduler/xtalk_sched.ml: Array Durations Encoding Evaluate Hashtbl List Option Par_sched Qcx_circuit Qcx_smt Serial_sched Sys
