lib/scheduler/encoding.mli: Qcx_circuit Qcx_device Qcx_smt
