lib/scheduler/evaluate.mli: Qcx_circuit Qcx_device
