lib/scheduler/layout.mli: Qcx_circuit Qcx_device
