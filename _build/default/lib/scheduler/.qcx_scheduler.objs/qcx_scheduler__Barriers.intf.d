lib/scheduler/barriers.mli: Qcx_circuit
