lib/scheduler/durations.ml: Array List Qcx_circuit Qcx_device
