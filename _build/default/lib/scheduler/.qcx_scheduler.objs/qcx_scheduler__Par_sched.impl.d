lib/scheduler/par_sched.ml: Array Durations List Qcx_circuit
