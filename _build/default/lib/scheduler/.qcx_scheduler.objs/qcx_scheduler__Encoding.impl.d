lib/scheduler/encoding.ml: Array Hashtbl List Option Printf Qcx_circuit Qcx_device Qcx_smt
