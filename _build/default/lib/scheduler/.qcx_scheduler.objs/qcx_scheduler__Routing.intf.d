lib/scheduler/routing.mli: Qcx_circuit Qcx_device
