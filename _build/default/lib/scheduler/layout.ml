module Device = Qcx_device.Device
module Topology = Qcx_device.Topology
module Calibration = Qcx_device.Calibration
module Crosstalk = Qcx_device.Crosstalk
module Circuit = Qcx_circuit.Circuit

let line_edges region =
  let rec pairs = function
    | a :: (b :: _ as rest) -> Topology.normalize (a, b) :: pairs rest
    | _ -> []
  in
  pairs region

let score_line device ~xtalk ?(threshold = 3.0) region =
  let topo = Device.topology device in
  let cal = Device.calibration device in
  let edges = line_edges region in
  List.iter
    (fun e -> if not (Topology.has_edge topo e) then invalid_arg "Layout.score_line: not a line")
    edges;
  let gate_cost =
    List.fold_left (fun acc e -> acc +. (Calibration.gate cal e).Calibration.cnot_error) 0.0 edges
  in
  (* 1/coherence in 1/ms: ~14 for a healthy 70 us qubit, ~170 for the
     Poughkeepsie qubit-10 outlier. *)
  let coherence_cost =
    List.fold_left
      (fun acc q -> acc +. (1.0e6 /. Calibration.coherence_limit cal q))
      0.0 region
  in
  let flagged = Crosstalk.high_crosstalk_pairs xtalk cal ~threshold in
  let unordered (a, b) = if a <= b then (a, b) else (b, a) in
  let internal_pairs =
    List.length
      (List.filter
         (fun (e1, e2) -> List.mem e1 edges && List.mem e2 edges)
         (List.map (fun (e1, e2) -> unordered (e1, e2)) flagged))
  in
  gate_cost +. (2e-4 *. coherence_cost) +. (0.05 *. float_of_int internal_pairs)

let lines_of_length device ~length =
  let topo = Device.topology device in
  let n = Topology.nqubits topo in
  let out = ref [] in
  let rec extend path last =
    if List.length path = length then out := List.rev path :: !out
    else
      List.iter
        (fun next -> if not (List.mem next path) then extend (next :: path) next)
        (Topology.neighbors topo last)
  in
  for q = 0 to n - 1 do
    extend [ q ] q
  done;
  !out

let pick device ~xtalk ~threshold ~length ~better =
  if length < 2 then invalid_arg "Layout: need length >= 2";
  let candidates = lines_of_length device ~length in
  match candidates with
  | [] -> invalid_arg "Layout: no line of that length on this device"
  | first :: rest ->
    let score = score_line device ~xtalk ~threshold in
    fst
      (List.fold_left
         (fun (best, best_score) candidate ->
           let s = score candidate in
           if better s best_score then (candidate, s) else (best, best_score))
         (first, score first) rest)

let best_line device ~xtalk ?(threshold = 3.0) ~length () =
  pick device ~xtalk ~threshold ~length ~better:(fun a b -> a < b)

let worst_line device ~xtalk ?(threshold = 3.0) ~length () =
  pick device ~xtalk ~threshold ~length ~better:(fun a b -> a > b)

let place circuit ~region ~nqubits =
  let k = List.length region in
  List.iter
    (fun q ->
      if q >= k then
        invalid_arg "Layout.place: circuit uses more qubits than the region provides")
    (Circuit.used_qubits circuit);
  Circuit.map_qubits circuit (fun q -> if q < k then List.nth region q else q + 1000) ~nqubits
