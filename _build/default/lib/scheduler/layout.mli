(** Noise- and crosstalk-adaptive initial layout.

    The third compiler-side defense, alongside the crosstalk-aware
    router and XtalkSched: choose {e where} on the device a program
    runs.  Follows the noise-adaptive mapping idea of Murali et al.
    (ASPLOS 2019) that the paper builds on, extended with the
    characterized crosstalk data: a candidate region is scored by its
    CNOT error rates, its qubits' coherence, and a penalty for every
    characterized high-crosstalk pair {e internal} to the region
    (those are the pairs a program on the region could excite). *)

val score_line :
  Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  ?threshold:float ->
  int list ->
  float
(** Score a connected line of qubits (lower is better): sum of edge
    CNOT errors + 2e-4 x sum of 1/coherence (1/ms) + 0.05 per internal
    high-crosstalk edge pair. *)

val best_line :
  Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  ?threshold:float ->
  length:int ->
  unit ->
  int list
(** The minimum-score simple path of [length] qubits (DFS enumeration;
    fine for NISQ-scale devices).  Raises [Invalid_argument] when the
    device has no such path. *)

val worst_line :
  Qcx_device.Device.t ->
  xtalk:Qcx_device.Crosstalk.t ->
  ?threshold:float ->
  length:int ->
  unit ->
  int list
(** The maximum-score line — the adversarial placement, useful as an
    experimental control. *)

val place :
  Qcx_circuit.Circuit.t -> region:int list -> nqubits:int -> Qcx_circuit.Circuit.t
(** Map a logical circuit over qubits [0 .. k-1] onto the region's
    qubits (logical i -> [List.nth region i]). *)
