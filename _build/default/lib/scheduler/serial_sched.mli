(** SerialSched: the fully-serialized baseline of Table 1.

    Every instruction runs alone — maximal crosstalk avoidance at the
    price of maximal decoherence.  Measurements still fire together at
    the end (IBMQ constraint). *)

val schedule : Qcx_device.Device.t -> Qcx_circuit.Circuit.t -> Qcx_circuit.Schedule.t
(** Input must be hardware-compliant (SWAPs decomposed). *)
