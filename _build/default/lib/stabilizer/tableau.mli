(** Aaronson–Gottesman CHP stabilizer tableau (Phys. Rev. A 70,
    052328, 2004).

    Simulates Clifford circuits (H, S, CNOT, Paulis) in O(n) per gate
    and O(n^2) per measurement.  Used in two roles:

    - as the quantum state of a noisy Clifford-circuit execution
      (randomized benchmarking, SWAP and Hidden Shift circuits), with
      stochastic Pauli errors injected between gates; and
    - as a faithful record of a Clifford *unitary* (start from the
      identity tableau, apply gates), whose canonical {!key} lets the
      characterization code invert random Clifford sequences exactly.

    The tableau holds 2n+1 rows of X/Z bit pairs plus sign bits; rows
    0..n-1 are destabilizers, n..2n-1 stabilizers, and row 2n is
    scratch space for the deterministic-measurement row sum. *)

type t

val create : int -> t
(** [create n] is the identity tableau over [n] qubits — equivalently
    the state |0...0>. *)

val nqubits : t -> int
val copy : t -> t

val h : t -> int -> unit
val s : t -> int -> unit
val sdg : t -> int -> unit
val x : t -> int -> unit
val y : t -> int -> unit
val z : t -> int -> unit
val cnot : t -> control:int -> target:int -> unit
val swap : t -> int -> int -> unit
(** Implemented as three CNOTs. *)

val apply_pauli : t -> [ `X | `Y | `Z ] -> int -> unit
(** Inject a Pauli error on a qubit (used by the noise engine). *)

val measure : t -> Qcx_util.Rng.t -> int -> bool
(** Computational-basis measurement; collapses the state.  Random
    outcomes draw from the supplied generator. *)

val measure_deterministic_opt : t -> int -> bool option
(** [Some b] when the qubit's Z-measurement outcome is deterministic
    in the current state (no collapse performed), [None] otherwise. *)

val key : t -> string
(** Canonical serialization of the full tableau (bits and signs).
    Two tableaus have equal keys iff they represent the same Clifford
    (up to unobservable global phase). *)

val is_identity : t -> bool

val equal : t -> t -> bool
(** Structural equality of tableaus (same as comparing {!key}s). *)
