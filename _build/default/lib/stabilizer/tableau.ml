module Rng = Qcx_util.Rng

type t = {
  n : int;
  xs : Bytes.t array;  (** xs.(row) has n bytes of 0/1 *)
  zs : Bytes.t array;
  r : Bytes.t;  (** phase exponent of i per row, 0..3 (as in chp.c) *)
}

(* Rows 0..n-1: destabilizers; n..2n-1: stabilizers; 2n: scratch. *)

let getb b i = Bytes.unsafe_get b i <> '\000'
let setb b i v = Bytes.unsafe_set b i (if v then '\001' else '\000')

(* Phase exponents live in the same Bytes buffer as small ints. *)
let get_phase t row = Char.code (Bytes.unsafe_get t.r row)
let set_phase t row v = Bytes.unsafe_set t.r row (Char.unsafe_chr (v land 3))
let flip_sign t row = set_phase t row (get_phase t row + 2)

let create n =
  if n <= 0 then invalid_arg "Tableau.create: n must be positive";
  let rows = (2 * n) + 1 in
  let xs = Array.init rows (fun _ -> Bytes.make n '\000') in
  let zs = Array.init rows (fun _ -> Bytes.make n '\000') in
  for i = 0 to n - 1 do
    setb xs.(i) i true;
    (* destabilizer i = X_i *)
    setb zs.(n + i) i true (* stabilizer i = Z_i *)
  done;
  { n; xs; zs; r = Bytes.make rows '\000' }

let nqubits t = t.n

let copy t =
  {
    n = t.n;
    xs = Array.map Bytes.copy t.xs;
    zs = Array.map Bytes.copy t.zs;
    r = Bytes.copy t.r;
  }

let check t q = if q < 0 || q >= t.n then invalid_arg "Tableau: qubit out of range"

let h t q =
  check t q;
  for i = 0 to (2 * t.n) - 1 do
    let xi = getb t.xs.(i) q and zi = getb t.zs.(i) q in
    if xi && zi then flip_sign t i;
    setb t.xs.(i) q zi;
    setb t.zs.(i) q xi
  done

let s t q =
  check t q;
  for i = 0 to (2 * t.n) - 1 do
    let xi = getb t.xs.(i) q and zi = getb t.zs.(i) q in
    if xi && zi then flip_sign t i;
    setb t.zs.(i) q (xi <> zi)
  done

let sdg t q =
  s t q;
  s t q;
  s t q

let z t q =
  check t q;
  for i = 0 to (2 * t.n) - 1 do
    if getb t.xs.(i) q then flip_sign t i
  done

let x t q =
  check t q;
  for i = 0 to (2 * t.n) - 1 do
    if getb t.zs.(i) q then flip_sign t i
  done

let y t q =
  check t q;
  for i = 0 to (2 * t.n) - 1 do
    if getb t.xs.(i) q <> getb t.zs.(i) q then flip_sign t i
  done

let cnot t ~control ~target =
  check t control;
  check t target;
  if control = target then invalid_arg "Tableau.cnot: control = target";
  for i = 0 to (2 * t.n) - 1 do
    let xc = getb t.xs.(i) control
    and xt = getb t.xs.(i) target
    and zc = getb t.zs.(i) control
    and zt = getb t.zs.(i) target in
    if xc && zt && xt = zc then flip_sign t i;
    setb t.xs.(i) target (xt <> xc);
    setb t.zs.(i) control (zc <> zt)
  done

let swap t a b =
  cnot t ~control:a ~target:b;
  cnot t ~control:b ~target:a;
  cnot t ~control:a ~target:b

let apply_pauli t p q =
  match p with `X -> x t q | `Y -> y t q | `Z -> z t q

(* Phase exponent contribution g(x1,z1,x2,z2) of multiplying two
   single-qubit Paulis (Aaronson-Gottesman eq. 4): the power of i
   picked up when multiplying row2's Pauli into row1's. *)
let g x1 z1 x2 z2 =
  match (x1, z1) with
  | false, false -> 0
  | true, true -> (if z2 then 1 else 0) - if x2 then 1 else 0
  | true, false -> if z2 then (if x2 then 1 else -1) else 0
  | false, true -> if x2 then (if z2 then -1 else 1) else 0

(* rowsum(h, i): row h <- row h * row i, with phase tracking mod 4.
   Stabilizer rows always end up with an even exponent; destabilizer
   rows may legitimately carry odd powers of i (their phases are never
   observed), so the exponent is stored as-is, chp.c style. *)
let rowsum t hrow irow =
  let phase = ref (get_phase t hrow + get_phase t irow) in
  for j = 0 to t.n - 1 do
    let x1 = getb t.xs.(irow) j
    and z1 = getb t.zs.(irow) j
    and x2 = getb t.xs.(hrow) j
    and z2 = getb t.zs.(hrow) j in
    phase := !phase + g x1 z1 x2 z2;
    setb t.xs.(hrow) j (x1 <> x2);
    setb t.zs.(hrow) j (z1 <> z2)
  done;
  set_phase t hrow (((!phase mod 4) + 4) mod 4)

let clear_row t row =
  Bytes.fill t.xs.(row) 0 t.n '\000';
  Bytes.fill t.zs.(row) 0 t.n '\000';
  set_phase t row 0

let find_random_stabilizer t q =
  let rec loop p = if p >= 2 * t.n then None else if getb t.xs.(p) q then Some p else loop (p + 1) in
  loop t.n

let deterministic_outcome t q =
  (* Scratch row accumulates the product of stabilizers n+i over all
     destabilizer rows i with x_i(q) = 1; its sign is the outcome. *)
  let scratch = 2 * t.n in
  clear_row t scratch;
  for i = 0 to t.n - 1 do
    if getb t.xs.(i) q then rowsum t scratch (i + t.n)
  done;
  get_phase t scratch = 2

let measure_deterministic_opt t q =
  check t q;
  match find_random_stabilizer t q with
  | Some _ -> None
  | None -> Some (deterministic_outcome t q)

let measure t rng q =
  check t q;
  match find_random_stabilizer t q with
  | None -> deterministic_outcome t q
  | Some p ->
    let outcome = Rng.bool rng in
    for i = 0 to (2 * t.n) - 1 do
      if i <> p && getb t.xs.(i) q then rowsum t i p
    done;
    (* Destabilizer p-n <- old stabilizer row p; stabilizer p <- +-Z_q. *)
    Bytes.blit t.xs.(p) 0 t.xs.(p - t.n) 0 t.n;
    Bytes.blit t.zs.(p) 0 t.zs.(p - t.n) 0 t.n;
    set_phase t (p - t.n) (get_phase t p);
    clear_row t p;
    setb t.zs.(p) q true;
    set_phase t p (if outcome then 2 else 0);
    outcome

let key t =
  let buf = Buffer.create ((2 * t.n * (2 * t.n)) + (2 * t.n)) in
  for i = 0 to (2 * t.n) - 1 do
    Buffer.add_bytes buf t.xs.(i);
    Buffer.add_bytes buf t.zs.(i);
    Buffer.add_char buf (Char.chr (Char.code '0' + get_phase t i))
  done;
  Buffer.contents buf

let is_identity t = key t = key (create t.n)

let equal a b = a.n = b.n && key a = key b
