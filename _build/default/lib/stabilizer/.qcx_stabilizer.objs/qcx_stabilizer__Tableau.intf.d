lib/stabilizer/tableau.mli: Qcx_util
