lib/stabilizer/tableau.ml: Array Buffer Bytes Char Qcx_util
