bin/qcx_simulate.mli:
