bin/qcx_simulate.ml: Arg Cmd Cmdliner Common Core List Printf String Term
