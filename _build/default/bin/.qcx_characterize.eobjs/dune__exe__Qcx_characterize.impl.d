bin/qcx_characterize.ml: Arg Cmd Cmdliner Common Core List Printf Term
