bin/qcx_schedule.ml: Arg Cmd Cmdliner Common Core Format Printf Term
