bin/common.ml: Arg Cmdliner Core Printf Term
