bin/qcx_schedule.mli:
