bin/qcx_characterize.mli:
