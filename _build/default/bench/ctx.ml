(* Shared context for the experiment harness: the three devices with
   crosstalk data characterized through the real pipeline (1-hop +
   bin-packing policy), plus quality knobs.

   Every experiment seeds its own Rng from here, so experiments are
   reproducible and order-independent. *)

type quality = Quick | Full

type t = {
  quality : quality;
  devices : (Core.Device.t * Core.Crosstalk.t) list;
      (** device, characterized conditional-error data *)
}

let rb_params = function
  | Quick -> { Core.Rb.lengths = [ 1; 2; 4; 8; 16; 32 ]; seeds = 6; trials = 192 }
  | Full -> { Core.Rb.lengths = [ 1; 2; 4; 6; 10; 16; 24; 32; 40 ]; seeds = 8; trials = 256 }

let tomography_trials = function Quick -> 192 | Full -> 1024
let distribution_trials = function Quick -> 2048 | Full -> 8192

let characterize quality device =
  let rng = Core.Rng.create (Hashtbl.hash (Core.Device.name device, "bench-characterize")) in
  let plan = Core.Policy.plan ~rng device Core.Policy.One_hop_binpacked in
  let outcome = Core.Policy.characterize ~params:(rb_params quality) ~rng device plan in
  outcome.Core.Policy.xtalk

let create quality =
  let devices =
    List.map (fun d -> (d, characterize quality d)) (Core.Presets.all ())
  in
  { quality; devices }

let poughkeepsie t = List.hd t.devices

let rng_for name = Core.Rng.create (Hashtbl.hash (name, "bench-seed"))

(* Crosstalk-prone SWAP endpoints for Figure 5: the paper's published
   endpoint lists filtered to circuits that actually cross a
   characterized high-crosstalk pair, topped up with additional prone
   paths so the three devices together provide ~46 circuits. *)
let swap_endpoints device ~xtalk =
  let listed = Core.Presets.swap_endpoints device in
  let prone (src, dst) =
    src <> dst
    && Core.Topology.qubit_distance (Core.Device.topology device) src dst >= 1
    &&
    let bench = Core.Swap_circuits.build device ~src ~dst in
    Core.Swap_circuits.is_crosstalk_prone device ~xtalk bench
  in
  let from_list = List.filter prone listed in
  if List.length from_list >= 12 then from_list
  else begin
    (* Fall back to scanning the device for prone paths. *)
    let n = Core.Device.nqubits device in
    let all = ref [] in
    for a = 0 to n - 1 do
      for b = a + 1 to n - 1 do
        if
          Core.Topology.qubit_distance (Core.Device.topology device) a b >= 2
          && prone (a, b)
        then all := (a, b) :: !all
      done
    done;
    let extra = List.filter (fun p -> not (List.mem p from_list)) (List.rev !all) in
    let rec take k = function
      | [] -> []
      | x :: rest -> if k <= 0 then [] else x :: take (k - 1) rest
    in
    from_list @ take (max 0 (14 - List.length from_list)) extra
  end

(* Solve the XtalkSched optimization once on [base + measures], then
   return a scheduler function that replays the serialization
   decisions on any extension of the base circuit (tomography basis
   rotations, etc.) through the ordinary parallel scheduler — the
   paper's barrier-deployment path. *)
let deployed_xtalk_scheduler ?(omega = 0.5) device ~xtalk base_circuit =
  let probe = Core.Circuit.measure_all base_circuit in
  let sched0, stats =
    Core.Xtalk_sched.schedule ~omega ~device ~xtalk probe
  in
  let dag0 = Core.Dag.of_circuit (Core.Schedule.circuit sched0) in
  let instances =
    Core.Encoding.interfering_instances ~device ~xtalk ~threshold:3.0 ~dag:dag0
  in
  let serialized = Core.Barriers.serialized_pairs sched0 ~pairs:instances in
  let scheduler c = Core.Par_sched.schedule_with_orderings device c ~extra:serialized in
  (scheduler, stats)
