(* Ablations of the design choices DESIGN.md calls out.

   (a) Routing vs scheduling: crosstalk-aware routing (route around
       flagged edges, a bounded-detour extension) and XtalkSched attack
       the same noise from different sides; measure each alone and
       combined, on the crosstalk-prone Poughkeepsie SWAP endpoints.
   (b) Omega auto-tuning: pick omega by model-predicted error instead
       of the fixed 0.5 — the automated version of Section 9.3's
       "careful tuning".
   (c) Solver: exact branch-and-bound vs the cluster decomposition
       (objective gap and compile time on the same circuits). *)

let run (ctx : Ctx.t) =
  let device, xtalk = Ctx.poughkeepsie ctx in
  let rng = Ctx.rng_for "ablation" in
  let endpoints = Ctx.swap_endpoints device ~xtalk in
  let trials_per_basis = max 96 (Ctx.tomography_trials ctx.Ctx.quality / 2) in

  Core.Tablefmt.section "Ablation (a): routing vs scheduling (Poughkeepsie)";
  let table =
    Core.Tablefmt.create
      [ "endpoints"; "route+Par"; "aware+Par"; "route+Xtalk"; "aware+Xtalk"; "hops (route/aware)" ]
  in
  let combined = ref [] in
  List.iter
    (fun (src, dst) ->
      let default_bench = Core.Swap_circuits.build device ~src ~dst in
      let aware_bench = Core.Swap_circuits.build_aware device ~xtalk ~src ~dst () in
      let tomo bench scheduler_of_base =
        let schedule = scheduler_of_base bench.Core.Swap_circuits.circuit in
        (Core.Tomography.bell_state device ~rng ~trials_per_basis ~schedule
           ~circuit:bench.Core.Swap_circuits.circuit ~pair:bench.Core.Swap_circuits.bell)
          .Core.Tomography.error
      in
      let par _base c = Core.Par_sched.schedule device c in
      let xt base =
        let scheduler, _ = Ctx.deployed_xtalk_scheduler ~omega:0.5 device ~xtalk base in
        fun c -> scheduler c
      in
      let route_par = tomo default_bench (fun _ -> par default_bench.Core.Swap_circuits.circuit) in
      let aware_par = tomo aware_bench (fun _ -> par aware_bench.Core.Swap_circuits.circuit) in
      let route_xt = tomo default_bench xt in
      let aware_xt = tomo aware_bench xt in
      combined := (route_par, aware_par, route_xt, aware_xt) :: !combined;
      Core.Tablefmt.add_row table
        [
          Printf.sprintf "%d,%d" src dst;
          Core.Tablefmt.fl ~decimals:3 route_par;
          Core.Tablefmt.fl ~decimals:3 aware_par;
          Core.Tablefmt.fl ~decimals:3 route_xt;
          Core.Tablefmt.fl ~decimals:3 aware_xt;
          Printf.sprintf "%d/%d"
            (Core.Circuit.two_qubit_count default_bench.Core.Swap_circuits.circuit)
            (Core.Circuit.two_qubit_count aware_bench.Core.Swap_circuits.circuit);
        ])
    endpoints;
  Core.Tablefmt.print table;
  let geo pick =
    Core.Stats.geomean
      (List.map (fun r -> let (a, b, c, d) = r in max 1e-4 (pick (a, b, c, d))) !combined)
  in
  Printf.printf
    "geomean errors: route+Par %.3f | aware+Par %.3f | route+Xtalk %.3f | aware+Xtalk %.3f\n"
    (geo (fun (a, _, _, _) -> a))
    (geo (fun (_, b, _, _) -> b))
    (geo (fun (_, _, c, _) -> c))
    (geo (fun (_, _, _, d) -> d));
  Printf.printf
    "routing alone helps when detours exist; scheduling helps everywhere; combined is best or ties\n";

  Core.Tablefmt.section "Ablation (b): omega auto-tuning";
  let table = Core.Tablefmt.create [ "endpoints"; "tuned omega"; "model err (tuned)"; "model err (w=0.5)" ] in
  List.iter
    (fun (src, dst) ->
      let bench = Core.Swap_circuits.build device ~src ~dst in
      let circuit = Core.Circuit.measure_all bench.Core.Swap_circuits.circuit in
      let omega, tuned_sched, _ = Core.Xtalk_sched.tune_omega ~device ~xtalk circuit in
      let fixed_sched, _ = Core.Xtalk_sched.schedule ~omega:0.5 ~device ~xtalk circuit in
      let model s = (Core.Evaluate.model device ~xtalk s).Core.Evaluate.error in
      Core.Tablefmt.add_row table
        [
          Printf.sprintf "%d,%d" src dst;
          Printf.sprintf "%.2f" omega;
          Core.Tablefmt.fl ~decimals:3 (model tuned_sched);
          Core.Tablefmt.fl ~decimals:3 (model fixed_sched);
        ])
    (List.filteri (fun i _ -> i < 6) endpoints);
  Core.Tablefmt.print table;

  Core.Tablefmt.section "Ablation (c): exact solve vs decomposition vs greedy";
  let table =
    Core.Tablefmt.create
      [
        "endpoints"; "pairs"; "exact obj"; "decomposed obj"; "exact err"; "greedy err";
        "exact s";
      ]
  in
  let quality = ref [] in
  List.iter
    (fun (src, dst) ->
      let bench = Core.Swap_circuits.build device ~src ~dst in
      let circuit = Core.Circuit.measure_all bench.Core.Swap_circuits.circuit in
      let exact_sched, exact = Core.Xtalk_sched.schedule ~omega:0.5 ~device ~xtalk circuit in
      let _, decomposed =
        Core.Xtalk_sched.schedule ~omega:0.5 ~max_exact_pairs:1 ~device ~xtalk circuit
      in
      let greedy_sched, _ = Core.Greedy_sched.schedule ~device ~xtalk circuit in
      let err s = (Core.Evaluate.oracle device s).Core.Evaluate.error in
      quality := (err exact_sched, err greedy_sched) :: !quality;
      Core.Tablefmt.add_row table
        [
          Printf.sprintf "%d,%d" src dst;
          string_of_int exact.Core.Xtalk_sched.pairs;
          Core.Tablefmt.fl ~decimals:4 exact.Core.Xtalk_sched.objective;
          Core.Tablefmt.fl ~decimals:4 decomposed.Core.Xtalk_sched.objective;
          Core.Tablefmt.fl ~decimals:3 (err exact_sched);
          Core.Tablefmt.fl ~decimals:3 (err greedy_sched);
          Printf.sprintf "%.3f" exact.Core.Xtalk_sched.solve_seconds;
        ])
    (List.filteri (fun i _ -> i < 6) endpoints);
  Core.Tablefmt.print table;
  let worse =
    List.length (List.filter (fun (ex, gr) -> gr > ex +. 1e-6) !quality)
  in
  Printf.printf
    "decomposition objective matches the exact optimum; greedy is worse on %d/%d circuits\n"
    worse (List.length !quality)
