(* Figure 9: sensitivity of XtalkSched's weight factor to application
   crosstalk susceptibility, on Hidden Shift instances over the four
   Poughkeepsie regions.

   (a) plain benchmark: its two-CNOT oracle layers barely overlap, so
       only omega = 1 should beat omega = 0;
   (b) redundant-CNOT variant (each oracle CNOT tripled): any omega in
       [0.2, 0.5] should beat omega = 0, with improvements up to ~3x. *)

let omegas = [ 0.0; 0.2; 0.35; 0.5; 0.7; 1.0 ]

let measure (ctx : Ctx.t) device ~xtalk ~rng ~omega ~redundancy region =
  let shift = [ true; false; true; true ] in
  let hs = Core.Hidden_shift.build device ~region ~shift ~redundancy in
  let sched, _ = Core.Xtalk_sched.schedule ~omega ~device ~xtalk hs.Core.Hidden_shift.circuit in
  let trials = Ctx.distribution_trials ctx.Ctx.quality in
  let counts = Core.Exec.run device sched ~rng ~trials ~backend:Core.Exec.Stabilizer in
  Core.Hidden_shift.error_rate hs
    ~counts_get:(Core.Exec.counts_get counts)
    ~total:(Core.Exec.counts_total counts)

let variant (ctx : Ctx.t) device ~xtalk ~redundancy title =
  Printf.printf "\n%s\n" title;
  let rng = Ctx.rng_for (Printf.sprintf "fig9-%d" redundancy) in
  let regions = Core.Presets.qaoa_regions device in
  let table =
    Core.Tablefmt.create
      ("region" :: List.map (fun w -> Printf.sprintf "w=%.2f" w) omegas)
  in
  let rows =
    List.map
      (fun region ->
        let row =
          List.map (fun omega -> measure ctx device ~xtalk ~rng ~omega ~redundancy region) omegas
        in
        Core.Tablefmt.add_row table
          (Printf.sprintf "[%s]" (String.concat ";" (List.map string_of_int region))
          :: List.map (Core.Tablefmt.fl ~decimals:3) row);
        row)
      regions
  in
  Core.Tablefmt.print table;
  rows

let run (ctx : Ctx.t) =
  Core.Tablefmt.section "Figure 9: Hidden Shift omega sensitivity (Poughkeepsie)";
  let device, xtalk = Ctx.poughkeepsie ctx in
  let plain = variant ctx device ~xtalk ~redundancy:0 "(a) no redundant CNOTs" in
  let redundant = variant ctx device ~xtalk ~redundancy:1 "(b) redundant CNOTs (3x oracle CNOTs)" in
  let at row w = List.nth row (Option.get (List.find_index (fun x -> x = w) omegas)) in
  let mid_best row =
    Core.Stats.minimum
      (List.filteri
         (fun i _ ->
           let w = List.nth omegas i in
           w >= 0.2 && w <= 0.5)
         row)
  in
  let improvements rows pick =
    Core.Stats.ratio_summary (List.map (fun row -> (at row 0.0, max 1e-6 (pick row))) rows)
  in
  let g_plain_mid, _ = improvements plain mid_best in
  let g_plain_w1, _ = improvements plain (fun row -> at row 1.0) in
  let g_red_mid, m_red_mid = improvements redundant mid_best in
  Printf.printf
    "\nplain: w in [0.2,0.5] vs w=0 geomean %.2fx (paper: no gain); w=1 vs w=0 geomean %.2fx\n"
    g_plain_mid g_plain_w1;
  Printf.printf
    "redundant: w in [0.2,0.5] vs w=0 geomean %.2fx, max %.2fx (paper: gains up to 3x)\n"
    g_red_mid m_red_mid
