(* Figure 4: daily variation of conditional error rates on IBMQ
   Poughkeepsie.  Six simulated days; the tracked pairs are the
   paper's (CX13,14 | CX18,19) and (CX11,12 | CX10,15).  Conditional
   rates should stay well above independent ones while drifting up to
   ~2-3x, and the flagged set should stay stable. *)

let tracked = [ ((13, 14), (18, 19)); ((11, 12), (10, 15)) ]

let run (ctx : Ctx.t) =
  Core.Tablefmt.section "Figure 4: daily variation of crosstalk (Poughkeepsie)";
  let base_device, _ = Ctx.poughkeepsie ctx in
  let rng = Ctx.rng_for "fig4" in
  let params = Ctx.rb_params ctx.Ctx.quality in
  let days = 6 in
  let header =
    "series" :: List.init days (fun d -> Printf.sprintf "day%d" d)
  in
  let table = Core.Tablefmt.create header in
  let series = Hashtbl.create 8 in
  let flagged_per_day = ref [] in
  for day = 0 to days - 1 do
    let device = Core.Drift.on_day base_device ~day in
    List.iter
      (fun (e1, e2) ->
        let fits = Core.Rb.run device ~rng ~params [ e1; e2 ] in
        let cond1 = (List.nth fits 0).Core.Rb.error_rate in
        let cond2 = (List.nth fits 1).Core.Rb.error_rate in
        let ind1 = (Core.Rb.independent device ~rng ~params e1).Core.Rb.error_rate in
        let ind2 = (Core.Rb.independent device ~rng ~params e2).Core.Rb.error_rate in
        let push key v =
          Hashtbl.replace series key (v :: Option.value ~default:[] (Hashtbl.find_opt series key))
        in
        let name (a, b) = Printf.sprintf "CX%d,%d" a b in
        push (Printf.sprintf "%s|%s" (name e1) (name e2)) cond1;
        push (Printf.sprintf "%s|%s" (name e2) (name e1)) cond2;
        push (name e1) ind1;
        push (name e2) ind2)
      tracked;
    (* Stability of the flagged set across days (measured via the
       oracle to keep this experiment cheap). *)
    flagged_per_day :=
      Core.Device.true_high_crosstalk_pairs device ~threshold:3.0 :: !flagged_per_day
  done;
  Hashtbl.iter
    (fun key values ->
      Core.Tablefmt.add_row table
        (key :: List.rev_map (fun v -> Core.Tablefmt.fl ~decimals:3 v) values))
    series;
  Core.Tablefmt.print table;
  let sets = List.map (List.sort compare) !flagged_per_day in
  let stable =
    match sets with
    | [] -> true
    | first :: rest -> List.for_all (fun s -> s = first) rest
  in
  Printf.printf "high-crosstalk pair set stable across %d days: %b\n" days stable;
  List.iter
    (fun (key : string) ->
      match Hashtbl.find_opt series key with
      | Some values when List.length values > 1 ->
        let lo = Core.Stats.minimum values and hi = Core.Stats.maximum values in
        if String.contains key '|' then
          Printf.printf "%s: day-to-day spread %.1fx (paper: up to 2-3x)\n" key (hi /. lo)
      | _ -> ())
    (Hashtbl.fold (fun k _ acc -> k :: acc) series [])
