(* Section 9.4 scalability study: XtalkSched compile time on
   quantum-supremacy-style random circuits, 6-18 qubits, 100-1000
   gates.  The paper reports < 2 minutes for 18 qubits / 500 gates and
   < 15 minutes for 1000 gates; with the cluster decomposition our
   solver should stay well inside both. *)

let instances (ctx : Ctx.t) =
  match ctx.Ctx.quality with
  | Ctx.Quick -> [ (6, 100); (10, 250); (14, 500); (18, 500); (18, 1000) ]
  | Ctx.Full -> [ (6, 100); (8, 150); (10, 250); (12, 350); (14, 500); (16, 750); (18, 1000) ]

let compile_row table device xtalk rng (nqubits, target_gates) =
  let bench = Core.Supremacy.build device ~rng ~nqubits ~target_gates in
  let t0 = Sys.time () in
  let _, stats =
    Core.Xtalk_sched.schedule ~omega:0.5 ~node_budget:200_000 ~device ~xtalk
      bench.Core.Supremacy.circuit
  in
  let elapsed = Sys.time () -. t0 in
  Core.Tablefmt.add_row table
    [
      Core.Device.name device;
      string_of_int nqubits;
      string_of_int (Core.Circuit.length bench.Core.Supremacy.circuit);
      string_of_int stats.Core.Xtalk_sched.pairs;
      string_of_int stats.Core.Xtalk_sched.clusters;
      string_of_int stats.Core.Xtalk_sched.nodes;
      Printf.sprintf "%.2f" elapsed;
    ]

let run (ctx : Ctx.t) =
  Core.Tablefmt.section "Section 9.4: scheduler scalability (supremacy circuits)";
  let device, xtalk = Ctx.poughkeepsie ctx in
  let rng = Ctx.rng_for "scale" in
  let table =
    Core.Tablefmt.create
      [ "device"; "qubits"; "gates"; "interfering pairs"; "clusters"; "nodes"; "compile time (s)" ]
  in
  List.iter (compile_row table device xtalk rng) (instances ctx);
  (* Beyond the paper: a synthetic 36-qubit grid with random crosstalk
     (ground truth used directly; characterizing a 6x6 grid is the
     expensive part on real hardware, not the compile). *)
  let big = Core.Presets.grid ~rows:6 ~cols:6 () in
  let big_xtalk = Core.Device.ground_truth big in
  List.iter
    (compile_row table big big_xtalk rng)
    [ (24, 600); (36, 1000) ];
  Core.Tablefmt.print table;
  Printf.printf "\npaper (with Z3): < 2 min at 18 qubits/500 gates, < 15 min at 1000 gates\n"
