(* Table 1: the scheduler taxonomy, verified behaviourally.

   omega = 0 (decoherence only) must reproduce ParSched's duration on
   a crosstalk-prone program; omega = 1 (crosstalk only) must
   serialize every interfering pair like SerialSched does.  The
   mid-range XtalkSched sits between the two durations. *)

let run (ctx : Ctx.t) =
  Core.Tablefmt.section "Table 1: scheduler taxonomy (behavioural check)";
  let device, xtalk = Ctx.poughkeepsie ctx in
  let bench = Core.Swap_circuits.build device ~src:0 ~dst:13 in
  let circuit = Core.Circuit.measure_all bench.Core.Swap_circuits.circuit in
  let serial = Core.Serial_sched.schedule device circuit in
  let par = Core.Par_sched.schedule device circuit in
  let xt omega = fst (Core.Xtalk_sched.schedule ~omega ~device ~xtalk circuit) in
  let x0 = xt 0.0 and x05 = xt 0.5 and x1 = xt 1.0 in
  let overlapping sched =
    let dag = Core.Dag.of_circuit (Core.Schedule.circuit sched) in
    let instances = Core.Encoding.interfering_instances ~device ~xtalk ~threshold:3.0 ~dag in
    List.length (List.filter (fun (a, b) -> Core.Schedule.overlaps sched a b) instances)
  in
  let table =
    Core.Tablefmt.create
      [ "algorithm"; "objective"; "duration (ns)"; "overlapping high-xtalk pairs" ]
  in
  let row name objective sched =
    Core.Tablefmt.add_row table
      [
        name;
        objective;
        Printf.sprintf "%.0f" (Core.Evaluate.duration sched);
        string_of_int (overlapping sched);
      ]
  in
  row "SerialSched" "mitigate crosstalk (serialize all)" serial;
  row "ParSched" "mitigate decoherence (max parallel)" par;
  row "XtalkSched w=0" "decoherence only" x0;
  row "XtalkSched w=0.5" "both (SMT optimization)" x05;
  row "XtalkSched w=1" "crosstalk only" x1;
  Core.Tablefmt.print table;
  (* omega = 0 optimizes the decoherence objective subject to the
     paper's no-partial-overlap constraint (eqs. 11-13), which
     ParSched's free-running ASAP schedule is exempt from — exact
     equivalence is therefore impossible by construction; the paper's
     "equivalent to ParSched" holds up to that constraint.  Check that
     w=0 lands within a few percent of ParSched's decoherence success
     and clearly above SerialSched's. *)
  let deco sched = (Core.Evaluate.oracle device sched).Core.Evaluate.decoherence_success in
  Printf.printf
    "\nchecks: w=0 decoherence %.4f ~ ParSched %.4f (gap %.4f, ParSched-like: %b, beats SerialSched %.4f: %b); w=1 overlaps no high-xtalk pair: %b\n"
    (deco x0) (deco par)
    (deco par -. deco x0)
    (deco par -. deco x0 < 0.05)
    (deco serial)
    (deco x0 > deco serial)
    (overlapping x1 = 0)
