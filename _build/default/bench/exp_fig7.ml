(* Figure 7: XtalkSched error rates vs the crosstalk-free ideal, on
   IBMQ Poughkeepsie.

   The ideal for each path length is the average tomography error
   over SWAP paths of that length that never cross a high-crosstalk
   pair, taking the better of ParSched/SerialSched per path (the
   paper's "lowest error schedule").  XtalkSched errors on the
   crosstalk-prone paths should land within roughly one standard
   deviation of the ideal. *)

let rec take k = function [] -> [] | x :: rest -> if k <= 0 then [] else x :: take (k - 1) rest

let run (ctx : Ctx.t) (fig5 : (Core.Device.t * Exp_fig5.row list) list option) =
  Core.Tablefmt.section "Figure 7: XtalkSched vs crosstalk-free ideal (Poughkeepsie)";
  let device, xtalk = Ctx.poughkeepsie ctx in
  let rng = Ctx.rng_for "fig7" in
  let trials_per_basis = Ctx.tomography_trials ctx.Ctx.quality in
  (* XtalkSched rows: reuse Figure 5 measurements when available. *)
  let xtalk_rows =
    match fig5 with
    | Some ((d, rows) :: _) when Core.Device.name d = "IBMQ Poughkeepsie" ->
      List.map (fun (r : Exp_fig5.row) -> (r.Exp_fig5.endpoints, r.Exp_fig5.path_length, r.Exp_fig5.xtalk_error)) rows
    | _ ->
      List.map
        (fun (src, dst) ->
          let bench = Core.Swap_circuits.build device ~src ~dst in
          let base = bench.Core.Swap_circuits.circuit in
          let schedule, _ = Ctx.deployed_xtalk_scheduler ~omega:0.5 device ~xtalk base in
          let r =
            Core.Tomography.bell_state device ~rng ~trials_per_basis ~schedule ~circuit:base
              ~pair:bench.Core.Swap_circuits.bell
          in
          ((src, dst), bench.Core.Swap_circuits.path_length, r.Core.Tomography.error))
        (Ctx.swap_endpoints device ~xtalk)
  in
  (* Ideal errors per path length from crosstalk-free paths. *)
  let lengths = List.sort_uniq compare (List.map (fun (_, l, _) -> l) xtalk_rows) in
  let ideal_of_length =
    List.map
      (fun len ->
        let candidates = Core.Swap_circuits.crosstalk_free_paths device ~xtalk ~length:len () in
        let sample = take (if ctx.Ctx.quality = Ctx.Quick then 4 else 8) candidates in
        let errors =
          List.map
            (fun (src, dst) ->
              let bench = Core.Swap_circuits.build device ~src ~dst in
              let base = bench.Core.Swap_circuits.circuit in
              let tomo schedule =
                (Core.Tomography.bell_state device ~rng ~trials_per_basis ~schedule
                   ~circuit:base ~pair:bench.Core.Swap_circuits.bell)
                  .Core.Tomography.error
              in
              min
                (tomo (fun c -> Core.Par_sched.schedule device c))
                (tomo (fun c -> Core.Serial_sched.schedule device c)))
            sample
        in
        (len, errors))
      lengths
  in
  let table =
    Core.Tablefmt.create
      [ "qubit pair"; "XtalkSched error"; "ideal (crosstalk free)"; "path length" ]
  in
  List.iter
    (fun ((src, dst), len, err) ->
      let ideal =
        match List.assoc_opt len ideal_of_length with
        | Some (_ :: _ as errors) ->
          Printf.sprintf "%.3f +- %.3f" (Core.Stats.mean errors) (Core.Stats.std errors)
        | _ -> "n/a"
      in
      Core.Tablefmt.add_row table
        [ Printf.sprintf "%d,%d" src dst; Core.Tablefmt.fl ~decimals:3 err; ideal;
          string_of_int len ])
    (List.sort (fun (_, l1, _) (_, l2, _) -> compare l1 l2) xtalk_rows);
  Core.Tablefmt.print table;
  (* Paper's summary statistic: XtalkSched within ~1% +- 16% of the
     ideal average for the same length. *)
  let gaps =
    List.filter_map
      (fun (_, len, err) ->
        match List.assoc_opt len ideal_of_length with
        | Some (_ :: _ as errors) -> Some (err -. Core.Stats.mean errors)
        | _ -> None)
      xtalk_rows
  in
  if gaps <> [] then
    Printf.printf
      "\nmean gap to crosstalk-free ideal: %+.3f +- %.3f (paper: 1%% +- 16%%) -> %s\n"
      (Core.Stats.mean gaps) (Core.Stats.std gaps)
      (if Core.Stats.mean gaps < 0.05 then "near-optimal mitigation" else "suboptimal")
