(* Figure 6: the three schedules for the SWAP path 0 -> 13 on IBMQ
   Poughkeepsie (0-5-10-11-12-13), shown as ASCII timelines, plus the
   barriered circuit XtalkSched emits.

   Things to observe, as in the paper: SerialSched strings all four
   SWAPs out; ParSched overlaps SWAP 5,10 with SWAP 11,12 (the high
   crosstalk pair); XtalkSched serializes exactly those two, and
   orders SWAP 11,12 *first* so that low-coherence qubit 10 (T1 < 6us)
   starts as late as possible. *)

let run (ctx : Ctx.t) =
  Core.Tablefmt.section "Figure 6: schedules for SWAP path 0 -> 13 (Poughkeepsie)";
  let device, xtalk = Ctx.poughkeepsie ctx in
  let bench = Core.Swap_circuits.build device ~src:0 ~dst:13 in
  let circuit = Core.Circuit.measure_all bench.Core.Swap_circuits.circuit in
  Printf.printf "path: %s; CNOT lands on (%d, %d)\n"
    (String.concat "-"
       (List.map string_of_int (Core.Routing.swap_path_qubits device ~src:0 ~dst:13)))
    (fst bench.Core.Swap_circuits.bell)
    (snd bench.Core.Swap_circuits.bell);
  let show name sched =
    let b = Core.Evaluate.oracle device sched in
    Printf.printf "\n--- %s (duration %.0f ns, oracle error %.3f) ---\n" name
      (Core.Evaluate.duration sched) b.Core.Evaluate.error;
    Format.printf "%a@?" Core.Schedule.pp_timeline sched
  in
  show "SerialSched" (Core.Serial_sched.schedule device circuit);
  show "ParSched" (Core.Par_sched.schedule device circuit);
  let sched, _ = Core.Xtalk_sched.schedule ~omega:0.5 ~device ~xtalk circuit in
  show "XtalkSched w=0.5" sched;
  (* The barrier-enforced circuit, as it would be submitted to IBMQ. *)
  let dag = Core.Dag.of_circuit (Core.Schedule.circuit sched) in
  let instances = Core.Encoding.interfering_instances ~device ~xtalk ~threshold:3.0 ~dag in
  let serialized = Core.Barriers.serialized_pairs sched ~pairs:instances in
  let barriered = Core.Barriers.insert sched ~serialized in
  Printf.printf "\nXtalkSched output with barriers (OpenQASM):\n%s"
    (Core.Qasm.of_circuit barriered);
  (* Ordering check: qubit 10's first gate should start later under
     XtalkSched than qubit 12's (SWAP 11,12 scheduled first). *)
  (match
     ( Core.Schedule.qubit_lifetime sched 10,
       Core.Schedule.qubit_lifetime sched 12 )
   with
  | Some (f10, _), Some (f12, _) ->
    Printf.printf
      "\nqubit 10 (T1 < 6us) first gate at %.0f ns vs qubit 12 at %.0f ns -> %s\n" f10 f12
      (if f10 >= f12 then "low-coherence qubit enters late, as in the paper" else "UNEXPECTED")
  | _ -> ())
