(* Figure 5 (a-c): measured SWAP-circuit error rates for the three
   schedulers on the three devices, via Bell-state tomography; and
   (d): program durations on Poughkeepsie.

   XtalkSched runs at the paper's omega = 0.5; its decisions are
   deployed through barrier-style orderings so all nine tomography
   basis circuits share one optimization solve. *)

type row = {
  endpoints : int * int;
  path_length : int;
  serial_error : float;
  par_error : float;
  xtalk_error : float;
  serial_duration : float;
  par_duration : float;
  xtalk_duration : float;
}

let measure_pair (ctx : Ctx.t) device ~xtalk ~rng (src, dst) =
  let bench = Core.Swap_circuits.build device ~src ~dst in
  let base = bench.Core.Swap_circuits.circuit in
  let trials_per_basis = Ctx.tomography_trials ctx.Ctx.quality in
  let tomo schedule =
    (Core.Tomography.bell_state device ~rng ~trials_per_basis ~schedule ~circuit:base
       ~pair:bench.Core.Swap_circuits.bell)
      .Core.Tomography.error
  in
  let serial_schedule c = Core.Serial_sched.schedule device c in
  let par_schedule c = Core.Par_sched.schedule device c in
  let xtalk_schedule, _stats = Ctx.deployed_xtalk_scheduler ~omega:0.5 device ~xtalk base in
  let duration schedule = Core.Evaluate.duration (schedule (Core.Circuit.measure_all base)) in
  {
    endpoints = (src, dst);
    path_length = bench.Core.Swap_circuits.path_length;
    serial_error = tomo serial_schedule;
    par_error = tomo par_schedule;
    xtalk_error = tomo xtalk_schedule;
    serial_duration = duration serial_schedule;
    par_duration = duration par_schedule;
    xtalk_duration = duration xtalk_schedule;
  }

let device_rows (ctx : Ctx.t) (device, xtalk) =
  let rng = Ctx.rng_for ("fig5-" ^ Core.Device.name device) in
  let endpoints = Ctx.swap_endpoints device ~xtalk in
  List.map (measure_pair ctx device ~xtalk ~rng) endpoints

let print_device device rows =
  Printf.printf "\n%s (%d crosstalk-prone SWAP circuits)\n" (Core.Device.name device)
    (List.length rows);
  let table =
    Core.Tablefmt.create
      [ "qubit pair"; "len"; "SerialSched"; "ParSched"; "XtalkSched w=0.5"; "xtalk vs par" ]
  in
  List.iter
    (fun r ->
      Core.Tablefmt.add_row table
        [
          Printf.sprintf "%d,%d" (fst r.endpoints) (snd r.endpoints);
          string_of_int r.path_length;
          Core.Tablefmt.fl ~decimals:3 r.serial_error;
          Core.Tablefmt.fl ~decimals:3 r.par_error;
          Core.Tablefmt.fl ~decimals:3 r.xtalk_error;
          Printf.sprintf "%.2fx" (r.par_error /. max 1e-6 r.xtalk_error);
        ])
    rows;
  Core.Tablefmt.print table

let run (ctx : Ctx.t) =
  Core.Tablefmt.section "Figure 5(a-c): SWAP circuit error rates (tomography)";
  let all_rows =
    List.map
      (fun ((device, _) as entry) ->
        let rows = device_rows ctx entry in
        print_device device rows;
        (device, rows))
      ctx.Ctx.devices
  in
  let flat = List.concat_map snd all_rows in
  let vs_par = List.map (fun r -> (r.par_error, max 1e-6 r.xtalk_error)) flat in
  let vs_serial = List.map (fun r -> (r.serial_error, max 1e-6 r.xtalk_error)) flat in
  let gp, mp = Core.Stats.ratio_summary vs_par in
  let gs, ms = Core.Stats.ratio_summary vs_serial in
  Printf.printf
    "\nXtalkSched vs ParSched: geomean %.2fx, max %.2fx (paper: geomean 2x, up to 5.6x)\n" gp mp;
  Printf.printf "XtalkSched vs SerialSched: geomean %.2fx, max %.2fx (paper: up to 9.2x)\n" gs ms;
  (* (d) program durations on Poughkeepsie. *)
  Core.Tablefmt.section "Figure 5(d): program durations, Poughkeepsie (ns)";
  (match all_rows with
  | (device, rows) :: _ when Core.Device.name device = "IBMQ Poughkeepsie" ->
    let table =
      Core.Tablefmt.create [ "qubit pair"; "SerialSched"; "ParSched"; "XtalkSched"; "xtalk/par" ]
    in
    List.iter
      (fun r ->
        Core.Tablefmt.add_row table
          [
            Printf.sprintf "%d,%d" (fst r.endpoints) (snd r.endpoints);
            Printf.sprintf "%.0f" r.serial_duration;
            Printf.sprintf "%.0f" r.par_duration;
            Printf.sprintf "%.0f" r.xtalk_duration;
            Printf.sprintf "%.2fx" (r.xtalk_duration /. max 1.0 r.par_duration);
          ])
      rows;
    Core.Tablefmt.print table;
    let ratios = List.map (fun r -> r.xtalk_duration /. max 1.0 r.par_duration) rows in
    Printf.printf "duration overhead vs ParSched: mean %.2fx, worst %.2fx (paper: 1.16x / 1.7x)\n"
      (Core.Stats.mean ratios) (Core.Stats.maximum ratios)
  | _ -> ());
  all_rows
