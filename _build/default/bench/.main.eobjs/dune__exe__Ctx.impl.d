bench/ctx.ml: Core Hashtbl List
