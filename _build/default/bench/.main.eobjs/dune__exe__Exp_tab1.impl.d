bench/exp_tab1.ml: Core Ctx List Printf
