bench/main.mli:
