bench/exp_fig7.ml: Core Ctx Exp_fig5 List Printf
