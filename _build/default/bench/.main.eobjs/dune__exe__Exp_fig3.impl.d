bench/exp_fig3.ml: Core Ctx List Printf
