bench/exp_fig8.ml: Core Ctx Hashtbl List Option Printf String
