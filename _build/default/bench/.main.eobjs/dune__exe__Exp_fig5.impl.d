bench/exp_fig5.ml: Core Ctx List Printf
