bench/exp_fig10.ml: Core Ctx List Printf
