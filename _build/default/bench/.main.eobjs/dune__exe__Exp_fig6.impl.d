bench/exp_fig6.ml: Core Ctx Format List Printf String
