bench/main.ml: Array Ctx Exp_ablation Exp_fig10 Exp_fig3 Exp_fig4 Exp_fig5 Exp_fig6 Exp_fig7 Exp_fig8 Exp_fig9 Exp_scale Exp_tab1 List Microbench Printf Sys
