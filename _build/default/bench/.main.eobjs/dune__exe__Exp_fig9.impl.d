bench/exp_fig9.ml: Core Ctx List Option Printf String
