bench/exp_fig4.ml: Core Ctx Hashtbl List Option Printf String
