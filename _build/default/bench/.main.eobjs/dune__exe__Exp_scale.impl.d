bench/exp_scale.ml: Core Ctx List Printf Sys
