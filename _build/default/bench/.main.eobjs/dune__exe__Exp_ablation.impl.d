bench/exp_ablation.ml: Core Ctx List Printf
