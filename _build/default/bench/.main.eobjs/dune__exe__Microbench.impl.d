bench/microbench.ml: Analyze Bechamel Benchmark Core Hashtbl Instance List Measure Printf Staged Test Time Toolkit
