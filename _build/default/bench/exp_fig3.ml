(* Figure 3: crosstalk characterization maps for the three systems.

   All 1-hop CNOT pairs are characterized with SRB (the all-pairs
   baseline is priced in Figure 10 but measured only on a >1-hop
   sample here, to confirm crosstalk's 1-hop locality).  Pairs with
   E(gi|gj) > 3 E(gi) are the paper's red dashed edges. *)

let run (ctx : Ctx.t) =
  Core.Tablefmt.section "Figure 3: crosstalk characterization maps";
  List.iter
    (fun (device, xtalk) ->
      let cal = Core.Device.calibration device in
      let flagged = Core.Crosstalk.high_crosstalk_pairs xtalk cal ~threshold:3.0 in
      let truth = Core.Device.true_high_crosstalk_pairs device ~threshold:3.0 in
      Printf.printf "\n%s: %d parallel CNOT pairs, %d at 1 hop\n"
        (Core.Device.name device)
        (List.length (Core.Topology.parallel_gate_pairs (Core.Device.topology device)))
        (List.length (Core.Topology.one_hop_gate_pairs (Core.Device.topology device)));
      let table =
        Core.Tablefmt.create
          [ "high-crosstalk pair"; "E(g1)"; "E(g1|g2)"; "ratio"; "in ground truth" ]
      in
      List.iter
        (fun ((e1 : int * int), (e2 : int * int)) ->
          (* Report the direction that actually triggered the flag. *)
          let ratio_of target spectator =
            let independent = (Core.Calibration.gate cal target).Core.Calibration.cnot_error in
            let conditional =
              Core.Crosstalk.conditional_or_independent xtalk cal ~target ~spectator
            in
            (conditional /. independent, independent, conditional)
          in
          let r12 = ratio_of e1 e2 and r21 = ratio_of e2 e1 in
          let (ratio, independent, conditional), (target, spectator) =
            let p1 = (r12, (e1, e2)) and p2 = (r21, (e2, e1)) in
            let (r1, _, _), _ = p1 and (r2, _, _), _ = p2 in
            if r1 >= r2 then p1 else p2
          in
          Core.Tablefmt.add_row table
            [
              Printf.sprintf "CX%d,%d | CX%d,%d" (fst target) (snd target) (fst spectator)
                (snd spectator);
              Core.Tablefmt.fl independent;
              Core.Tablefmt.fl conditional;
              Core.Tablefmt.fl ~decimals:1 ratio;
              (if List.mem (e1, e2) truth || List.mem (e2, e1) truth then "yes" else "NO");
            ])
        flagged;
      Core.Tablefmt.print table;
      let missed = List.filter (fun p -> not (List.mem p flagged)) truth in
      Printf.printf "flagged %d pairs; ground truth has %d (missed: %d)\n"
        (List.length flagged) (List.length truth) (List.length missed);
      Printf.printf "worst conditional/independent ratio: %.1fx (paper: up to 11x)\n"
        (Core.Crosstalk.max_ratio xtalk cal))
    ctx.Ctx.devices;
  (* Locality check: SRB on a few >1-hop pairs should show no
     significant conditional excess. *)
  let device, _ = Ctx.poughkeepsie ctx in
  let rng = Ctx.rng_for "fig3-locality" in
  let topo = Core.Device.topology device in
  let far_pairs =
    List.filteri
      (fun i _ -> i mod 37 = 0)
      (List.filter
         (fun (e1, e2) -> Core.Topology.gate_distance topo e1 e2 >= 2)
         (Core.Topology.parallel_gate_pairs topo))
  in
  Printf.printf "\nLocality check on %s (>1-hop pairs should be quiet):\n"
    (Core.Device.name device);
  let params = Ctx.rb_params ctx.Ctx.quality in
  let table = Core.Tablefmt.create [ "pair"; "hops"; "E(g1)"; "E(g1|g2)"; "ratio" ] in
  List.iter
    (fun (e1, e2) ->
      let fits = Core.Rb.run device ~rng ~params [ e1; e2 ] in
      let independent = (Core.Rb.independent device ~rng ~params e1).Core.Rb.error_rate in
      let conditional = (List.hd fits).Core.Rb.error_rate in
      Core.Tablefmt.add_row table
        [
          Printf.sprintf "CX%d,%d | CX%d,%d" (fst e1) (snd e1) (fst e2) (snd e2);
          string_of_int (Core.Topology.gate_distance topo e1 e2);
          Core.Tablefmt.fl independent;
          Core.Tablefmt.fl conditional;
          Core.Tablefmt.fl ~decimals:2 (conditional /. independent);
        ])
    far_pairs;
  Core.Tablefmt.print table
