(* Figure 10: crosstalk characterization time for the four policies on
   the three systems, priced with the paper's cost model (100 random
   sequences x 1024 trials per experiment, 1.27 ms per execution).

   The high-crosstalk-only policy re-measures the pairs flagged by the
   most recent full characterization — here, the pairs flagged by this
   bench run's own 1-hop characterization. *)

let run (ctx : Ctx.t) =
  Core.Tablefmt.section "Figure 10: characterization time (hours)";
  let table =
    Core.Tablefmt.create
      [
        "system"; "all pairs"; "opt1: one hop"; "opt2: +binpack"; "opt3: high xtalk only";
        "experiments (all->opt3)"; "reduction";
      ]
  in
  List.iter
    (fun (device, xtalk) ->
      let rng = Ctx.rng_for ("fig10-" ^ Core.Device.name device) in
      let flagged =
        Core.Crosstalk.high_crosstalk_pairs xtalk (Core.Device.calibration device)
          ~threshold:3.0
      in
      let p_all = Core.Policy.plan ~rng device Core.Policy.All_pairs in
      let p_hop = Core.Policy.plan ~rng device Core.Policy.One_hop in
      let p_bin = Core.Policy.plan ~rng device Core.Policy.One_hop_binpacked in
      let p_high = Core.Policy.plan ~rng device (Core.Policy.High_crosstalk_only flagged) in
      let hours p = Core.Policy.estimated_hours p in
      Core.Tablefmt.add_row table
        [
          Core.Device.name device;
          Printf.sprintf "%.2f" (hours p_all);
          Printf.sprintf "%.2f" (hours p_hop);
          Printf.sprintf "%.2f" (hours p_bin);
          Printf.sprintf "%.2f (%.0f min)" (hours p_high) (hours p_high *. 60.0);
          Printf.sprintf "%d -> %d -> %d -> %d"
            (Core.Policy.experiment_count p_all)
            (Core.Policy.experiment_count p_hop)
            (Core.Policy.experiment_count p_bin)
            (Core.Policy.experiment_count p_high);
          Printf.sprintf "%.0fx"
            (float_of_int (Core.Policy.experiment_count p_all)
            /. float_of_int (max 1 (Core.Policy.experiment_count p_high)));
        ])
    ctx.Ctx.devices;
  Core.Tablefmt.print table;
  Printf.printf
    "\npaper: all-pairs > 8 h; optimizations bring daily characterization under 15 minutes\n";
  Printf.printf "paper: 35-73x fewer experiments across the three systems\n"
