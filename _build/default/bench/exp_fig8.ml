(* Figure 8: QAOA cross entropy vs the crosstalk weight factor omega,
   on the four crosstalk-prone 4-qubit regions of IBMQ Poughkeepsie.

   Cross entropy is measured against the ideal noise-free
   distribution; omega = 0 reduces XtalkSched to ParSched-like
   schedules and omega = 1 to SerialSched-like ones, and the sweet
   spot should sit at intermediate omega.  The grey band of the paper
   (achievable cross entropy on crosstalk-free regions) is estimated
   the same way. *)

let omegas = [ 0.0; 0.03; 0.1; 0.2; 0.3; 0.5; 0.7; 0.9; 1.0 ]

let crosstalk_free_lines device ~xtalk =
  (* 4-qubit line regions whose outer-edge CNOT pairs carry no
     characterized crosstalk. *)
  let topo = Core.Device.topology device in
  let n = Core.Topology.nqubits topo in
  let lines = ref [] in
  for a = 0 to n - 1 do
    List.iter
      (fun b ->
        List.iter
          (fun c ->
            if c <> a then
              List.iter
                (fun d ->
                  if d <> a && d <> b then begin
                    let region = [ a; b; c; d ] in
                    let cal = Core.Device.calibration device in
                    let e1 = Core.Topology.normalize (a, b)
                    and e2 = Core.Topology.normalize (c, d) in
                    let quiet =
                      Core.Crosstalk.conditional_or_independent xtalk cal ~target:e1 ~spectator:e2
                      <= 2.0 *. (Core.Calibration.gate cal e1).Core.Calibration.cnot_error
                      && Core.Crosstalk.conditional_or_independent xtalk cal ~target:e2
                           ~spectator:e1
                         <= 2.0 *. (Core.Calibration.gate cal e2).Core.Calibration.cnot_error
                    in
                    if quiet then lines := region :: !lines
                  end)
                (Core.Topology.neighbors topo c))
          (List.filter (fun c -> c <> a) (Core.Topology.neighbors topo b)))
      (Core.Topology.neighbors topo a)
  done;
  !lines

let measure_ce (ctx : Ctx.t) device ~xtalk ~rng ~omega region =
  (* One fixed ansatz instance per region (same angles across omega
     values, so the sweep isolates the scheduling effect). *)
  let qaoa =
    Core.Qaoa.build device
      ~rng:(Core.Rng.create (Hashtbl.hash ("fig8-angles", region)))
      ~region
  in
  let circuit = qaoa.Core.Qaoa.circuit in
  let sched, _ = Core.Xtalk_sched.schedule ~omega ~device ~xtalk circuit in
  let trajectories = Ctx.distribution_trials ctx.Ctx.quality / 4 in
  let noisy = Core.Exec.run_distribution device sched ~rng ~trajectories in
  let measured =
    (* Readout mitigation inverts the confusion the executor applied. *)
    let flips =
      List.map
        (fun q ->
          (Core.Calibration.qubit (Core.Device.calibration device) q)
            .Core.Calibration.readout_error)
        (Core.Exec.measured_qubits circuit)
    in
    let scale = 10_000.0 in
    Core.Readout_mitigation.mitigate ~flips
      ~counts:(List.map (fun (k, p) -> (k, int_of_float (p *. scale))) noisy)
  in
  let ideal_state, _ = Core.Exec.run_ideal circuit in
  let ideal = Core.State.probabilities ideal_state in
  (Core.Cross_entropy.against_ideal ~ideal ~measured, Core.Cross_entropy.entropy ideal)

let run (ctx : Ctx.t) =
  Core.Tablefmt.section "Figure 8: QAOA cross entropy vs omega (Poughkeepsie)";
  let device, xtalk = Ctx.poughkeepsie ctx in
  let regions = Core.Presets.qaoa_regions device in
  let rng = Ctx.rng_for "fig8" in
  let table =
    Core.Tablefmt.create
      ("region" :: List.map (fun w -> Printf.sprintf "w=%.2f" w) omegas)
  in
  let series =
    List.map
      (fun region ->
        let results = List.map (fun omega -> measure_ce ctx device ~xtalk ~rng ~omega region) omegas in
        let row = List.map fst results in
        let h = snd (List.hd results) in
        Core.Tablefmt.add_row table
          (Printf.sprintf "[%s]" (String.concat ";" (List.map string_of_int region))
          :: List.map (Core.Tablefmt.fl ~decimals:3) row);
        (region, row, h))
      regions
  in
  Core.Tablefmt.print table;
  List.iter
    (fun (region, _, h) ->
      Printf.printf "theoretical ideal (noise free) for [%s]: %.3f nats\n"
        (String.concat ";" (List.map string_of_int region))
        h)
    series;
  (* Grey band: the cross-entropy *loss* achievable on crosstalk-free
     regions (like-for-like: each quiet region runs its own instance
     and is scored against its own ideal). *)
  let quiet = crosstalk_free_lines device ~xtalk in
  let sample = List.filteri (fun i _ -> i < 4) quiet in
  let band =
    List.map
      (fun region ->
        let ce, h = measure_ce ctx device ~xtalk ~rng ~omega:0.0 region in
        Core.Cross_entropy.loss ~ideal_entropy:h ce)
      sample
  in
  if band <> [] then
    Printf.printf
      "crosstalk-free achievable CE loss: %.3f +- %.3f nats (the paper's grey band, as loss)\n"
      (Core.Stats.mean band) (Core.Stats.std band);
  (* Improvement summary: best mid-omega vs the endpoints. *)
  let losses =
    List.map
      (fun (_, row, h) ->
        let at w =
          List.nth row (Option.get (List.find_index (fun x -> x = w) omegas))
        in
        let mid =
          Core.Stats.minimum
            (List.filteri
               (fun i _ ->
                 let w = List.nth omegas i in
                 w > 0.0 && w < 1.0)
               row)
        in
        let loss ce = max 1e-6 (Core.Cross_entropy.loss ~ideal_entropy:h ce) in
        (loss (at 0.0), loss (at 1.0), loss mid))
      series
  in
  let vs_par = List.map (fun (p, _, m) -> (p, max 1e-6 m)) losses in
  let vs_ser = List.map (fun (_, s, m) -> (s, max 1e-6 m)) losses in
  let gp, mp = Core.Stats.ratio_summary vs_par in
  let gs, ms = Core.Stats.ratio_summary vs_ser in
  Printf.printf
    "cross-entropy loss improvement vs ParSched(w=0): geomean %.2fx max %.2fx (paper: 1.8x/3.6x)\n"
    gp mp;
  Printf.printf
    "cross-entropy loss improvement vs SerialSched(w=1): geomean %.2fx max %.2fx (paper: 2x/4.3x)\n"
    gs ms
