examples/qaoa_sweep.ml: Core List Printf String
