examples/swap_mitigation.ml: Core List Printf String
