examples/characterization_workflow.ml: Core List Printf
