examples/fig1_walkthrough.ml: Core Format Printf
