examples/qaoa_sweep.mli:
