examples/swap_mitigation.mli:
