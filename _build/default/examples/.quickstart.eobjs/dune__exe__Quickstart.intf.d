examples/quickstart.mli:
