(* The paper's Figure 1, end to end: a 6-qubit machine where CNOT 0,1
   and CNOT 2,3 interfere and qubit 2 has low coherence.

   (c) the default right-aligned parallel schedule suffers crosstalk;
   (d) naive serialization trades it for decoherence on qubit 2;
   (e) the desired schedule avoids both — XtalkSched finds it.

     dune exec examples/fig1_walkthrough.exe *)

let () =
  let device = Core.Presets.example_6q () in
  let xtalk = Core.Device.ground_truth device in
  Printf.printf "machine: %s — high crosstalk between CNOT 0,1 and CNOT 2,3;\n"
    (Core.Device.name device);
  Printf.printf "qubit 2 coherence: %.1f us (device average ~70 us)\n\n"
    (Core.Calibration.coherence_limit (Core.Device.calibration device) 2 /. 1000.0);
  (* The program IR of Figure 1(b): g0 = H, then the two interfering
     CNOTs, a dependent CNOT, and readout. *)
  let c = Core.Circuit.create 6 in
  let c = Core.Circuit.h c 0 in
  let c = Core.Circuit.cnot c ~control:0 ~target:1 in
  let c = Core.Circuit.cnot c ~control:2 ~target:3 in
  let c = Core.Circuit.cnot c ~control:1 ~target:2 in
  let c = Core.Circuit.cnot c ~control:4 ~target:5 in
  let c = Core.Circuit.measure_all c in
  let show name sched =
    let b = Core.Evaluate.oracle device sched in
    Printf.printf "--- %s: duration %.0f ns, expected error %.3f ---\n" name
      (Core.Evaluate.duration sched) b.Core.Evaluate.error;
    Format.printf "%a@." Core.Schedule.pp_timeline sched
  in
  show "(c) ParSched (IBM default: parallel, right-aligned)"
    (Core.Par_sched.schedule device c);
  show "(d) SerialSched (naive serialization)" (Core.Serial_sched.schedule device c);
  let desired, stats = Core.Xtalk_sched.schedule ~omega:0.5 ~device ~xtalk c in
  show "(e) XtalkSched (the desired schedule)" desired;
  Printf.printf
    "XtalkSched serialized the interfering pair (%d instance%s) and kept everything else\n\
     parallel — avoiding the crosstalk without paying SerialSched's decoherence.\n"
    stats.Core.Xtalk_sched.pairs
    (if stats.Core.Xtalk_sched.pairs = 1 then "" else "s")
