(* Quickstart: the complete pipeline of the paper's Figure 2 in ~30
   lines — characterize crosstalk, compile with the crosstalk-adaptive
   scheduler, execute on the simulated device.

     dune exec examples/quickstart.exe *)

let () =
  (* A model of IBMQ Poughkeepsie: 20 qubits, the public coupling map,
     seeded calibration data and hidden ground-truth crosstalk. *)
  let device = Core.Presets.poughkeepsie () in
  let rng = Core.Rng.create 7 in

  (* 1. Characterize conditional CNOT error rates with simultaneous
     randomized benchmarking — 1-hop pairs only, bin-packed into
     parallel experiments (the paper's Optimizations 1 + 2). *)
  Printf.printf "characterizing %s...\n%!" (Core.Device.name device);
  let xtalk = Core.Pipeline.characterize device ~rng in
  let flagged =
    Core.Crosstalk.high_crosstalk_pairs xtalk (Core.Device.calibration device) ~threshold:3.0
  in
  Printf.printf "high-crosstalk pairs found: %d\n" (List.length flagged);

  (* 2. Build a workload: a CNOT between distant qubits 0 and 13,
     routed as meet-in-the-middle SWAP chains (Figure 6). *)
  let bench = Core.Swap_circuits.build device ~src:0 ~dst:13 in
  let circuit = Core.Circuit.measure_all bench.Core.Swap_circuits.circuit in
  Printf.printf "workload: %d gates, %d CNOTs, Bell pair on (%d, %d)\n"
    (Core.Circuit.length circuit)
    (Core.Circuit.two_qubit_count circuit)
    (fst bench.Core.Swap_circuits.bell)
    (snd bench.Core.Swap_circuits.bell);

  (* 3. Compile with XtalkSched (omega = 0.5) and with the baseline
     parallel scheduler, and compare expected error rates. *)
  let xtalk_sched, stats = Core.Pipeline.compile device ~xtalk circuit in
  let par_sched, _ = Core.Pipeline.compile ~scheduler:Core.Par_sched device ~xtalk circuit in
  (match stats with
  | Some s ->
    Printf.printf "solver: %d interfering pairs, %d nodes, optimal = %b\n"
      s.Core.Xtalk_sched.pairs s.Core.Xtalk_sched.nodes s.Core.Xtalk_sched.optimal
  | None -> ());
  let err s = (Core.Evaluate.oracle device s).Core.Evaluate.error in
  Printf.printf "expected error: ParSched %.3f -> XtalkSched %.3f\n" (err par_sched)
    (err xtalk_sched);

  (* 4. Execute on the simulated hardware. *)
  let counts = Core.Pipeline.execute device xtalk_sched ~rng ~trials:1024 in
  Printf.printf "executed %d trials; %d distinct outcomes\n"
    (Core.Exec.counts_total counts)
    (List.length (Core.Exec.counts_bindings counts))
