(* The paper's headline scenario (Figures 5/6): SWAP-based
   communication between distant qubits crossing a crosstalk-prone
   region, measured by Bell-state tomography under all three
   schedulers.

     dune exec examples/swap_mitigation.exe *)

let () =
  let device = Core.Presets.poughkeepsie () in
  let rng = Core.Rng.create 11 in
  Printf.printf "characterizing %s...\n%!" (Core.Device.name device);
  let xtalk = Core.Pipeline.characterize device ~rng in
  let bench = Core.Swap_circuits.build device ~src:0 ~dst:13 in
  Printf.printf "SWAP path 0 -> 13 via %s\n"
    (String.concat "-"
       (List.map string_of_int (Core.Routing.swap_path_qubits device ~src:0 ~dst:13)));
  let results =
    List.map
      (fun kind ->
        let schedule c = fst (Core.Pipeline.compile ~scheduler:kind device ~xtalk c) in
        let tomo =
          Core.Tomography.bell_state device ~rng ~trials_per_basis:512 ~schedule
            ~circuit:bench.Core.Swap_circuits.circuit ~pair:bench.Core.Swap_circuits.bell
        in
        let sched = schedule (Core.Circuit.measure_all bench.Core.Swap_circuits.circuit) in
        (kind, tomo.Core.Tomography.error, Core.Evaluate.duration sched))
      [ Core.Serial_sched; Core.Par_sched; Core.Xtalk_sched 0.5 ]
  in
  Printf.printf "\n%-20s %-18s %s\n" "scheduler" "tomography error" "duration (ns)";
  List.iter
    (fun (kind, error, duration) ->
      Printf.printf "%-20s %-18.3f %.0f\n" (Core.scheduler_name kind) error duration)
    results;
  match results with
  | [ (_, serial, _); (_, par, _); (_, xt, _) ] ->
    Printf.printf "\nXtalkSched improves on ParSched by %.1fx and on SerialSched by %.1fx\n"
      (par /. xt) (serial /. xt)
  | _ -> ()
