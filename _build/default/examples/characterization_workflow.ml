(* The operational characterization workflow of Section 5: a full
   1-hop pass once, then cheap daily re-measurement of only the
   high-crosstalk pairs (Optimization 3), with the paper's cost model
   showing the machine time saved.

     dune exec examples/characterization_workflow.exe *)

let () =
  let device = Core.Presets.poughkeepsie () in
  let rng = Core.Rng.create 17 in
  Printf.printf "== day 0: full 1-hop characterization ==\n%!";
  let full_plan = Core.Policy.plan ~rng device Core.Policy.One_hop_binpacked in
  let outcome = Core.Policy.characterize ~rng device full_plan in
  let flagged = Core.Policy.high_pairs_of_outcome device outcome in
  Printf.printf "experiments: %d (%.1f h at paper settings)\n"
    (Core.Policy.experiment_count full_plan)
    (Core.Policy.estimated_hours full_plan);
  Printf.printf "high-crosstalk pairs: %d\n\n" (List.length flagged);
  let daily_plan = Core.Policy.plan ~rng device (Core.Policy.High_crosstalk_only flagged) in
  Printf.printf "== daily plan: high-crosstalk pairs only ==\n";
  Printf.printf "experiments: %d (%.0f minutes at paper settings, %.0fx cheaper than all-pairs)\n"
    (Core.Policy.experiment_count daily_plan)
    (Core.Policy.estimated_hours daily_plan *. 60.0)
    (float_of_int
       (Core.Policy.experiment_count (Core.Policy.plan ~rng device Core.Policy.All_pairs))
    /. float_of_int (Core.Policy.experiment_count daily_plan));
  for day = 1 to 3 do
    let today = Core.Drift.on_day device ~day in
    let today_outcome = Core.Policy.characterize ~rng today daily_plan in
    let cal = Core.Device.calibration today in
    Printf.printf "\n== day %d ==\n" day;
    List.iter
      (fun ((e1 : int * int), (e2 : int * int)) ->
        Printf.printf "  E(CX%d,%d | CX%d,%d) = %.4f\n" (fst e1) (snd e1) (fst e2) (snd e2)
          (Core.Crosstalk.conditional_or_independent today_outcome.Core.Policy.xtalk cal
             ~target:e1 ~spectator:e2))
      flagged
  done;
  Printf.printf
    "\nconditional rates drift day to day, but the pair set is stable —\n\
     which is exactly why Optimization 3 is sound (Sections 5.2, Figure 4).\n"
