(* Sweep the crosstalk weight factor omega for a QAOA instance on a
   crosstalk-prone region (the Figure 8 experiment for one region),
   printing the cross entropy achieved at each omega.

     dune exec examples/qaoa_sweep.exe *)

let () =
  let device = Core.Presets.poughkeepsie () in
  let rng = Core.Rng.create 13 in
  Printf.printf "characterizing %s...\n%!" (Core.Device.name device);
  let xtalk = Core.Pipeline.characterize device ~rng in
  let region = [ 15; 10; 11; 12 ] in
  let qaoa = Core.Qaoa.build device ~rng:(Core.Rng.create 1) ~region in
  let circuit = qaoa.Core.Qaoa.circuit in
  let ideal_state, _ = Core.Exec.run_ideal circuit in
  let ideal = Core.State.probabilities ideal_state in
  let ideal_entropy = Core.Cross_entropy.entropy ideal in
  Printf.printf "QAOA on region [%s]: %d gates, %d CNOTs, ideal cross entropy %.3f nats\n"
    (String.concat ";" (List.map string_of_int region))
    (Core.Qaoa.gate_count qaoa) (Core.Qaoa.two_qubit_count qaoa) ideal_entropy;
  Printf.printf "\n%-8s %-14s %s\n" "omega" "cross entropy" "loss vs ideal";
  List.iter
    (fun omega ->
      let sched, _ = Core.Xtalk_sched.schedule ~omega ~device ~xtalk circuit in
      let measured = Core.Exec.run_distribution device sched ~rng ~trajectories:512 in
      let ce = Core.Cross_entropy.against_ideal ~ideal ~measured in
      Printf.printf "%-8.2f %-14.3f %+.3f\n" omega ce
        (Core.Cross_entropy.loss ~ideal_entropy ce))
    [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5; 0.7; 1.0 ]
